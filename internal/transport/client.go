package transport

import (
	"fmt"
	"net"
	"time"

	"switchml/internal/core"
	"switchml/internal/packet"
)

// ClientConfig configures a worker endpoint.
type ClientConfig struct {
	// Aggregator is the UDP address of the software aggregator (or a
	// SwitchML-speaking switch).
	Aggregator string
	// Worker is the protocol configuration; it must agree with the
	// aggregator's SwitchConfig on Workers, PoolSize, SlotElems and
	// LossRecovery.
	Worker core.WorkerConfig
	// RTO is the retransmission timeout; zero selects 50 ms, generous
	// for a LAN (the paper's testbed uses 1 ms; over real kernels a
	// larger value avoids spurious retransmissions under scheduling
	// jitter).
	RTO time.Duration
	// Timeout bounds one AllReduce call; zero selects 30 s.
	Timeout time.Duration
}

// Client is a synchronous SwitchML worker over UDP. It is not safe
// for concurrent use: one AllReduce runs at a time, matching the
// ordered-tensor requirement of the stream protocol (Appendix B).
type Client struct {
	cfg    ClientConfig
	conn   *net.UDPConn
	worker *core.Worker
	// lastSend tracks per-slot transmission times for timeout
	// sweeps.
	lastSend []time.Time
	// backoff counts consecutive timeouts per slot; the effective RTO
	// doubles with each (capped at 64x), preventing retransmission
	// storms when the configured RTO sits below the path RTT.
	backoff []uint8
}

// NewClient binds a local UDP socket and prepares the worker state
// machine.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.RTO == 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	w, err := core.NewWorker(cfg.Worker)
	if err != nil {
		return nil, err
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.Aggregator)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", cfg.Aggregator, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return &Client{
		cfg:      cfg,
		conn:     conn,
		worker:   w,
		lastSend: make([]time.Time, cfg.Worker.PoolSize),
		backoff:  make([]uint8, cfg.Worker.PoolSize),
	}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// Stats returns the worker state machine counters.
func (c *Client) Stats() core.WorkerStats { return c.worker.Stats() }

// AllReduceInt32 aggregates u with the other workers and returns the
// elementwise sum. It blocks until the aggregate is complete or the
// configured timeout elapses.
func (c *Client) AllReduceInt32(u []int32) ([]int32, error) {
	if len(u) == 0 {
		return nil, nil
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	for _, p := range c.worker.Start(u) {
		if err := c.send(p); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 65536)
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: all-reduce timed out after %v (%d chunks outstanding)",
				c.cfg.Timeout, c.worker.PendingCount())
		}
		// Wake at the earliest pending retransmission deadline.
		readDeadline := time.Now().Add(c.cfg.RTO)
		for idx := range c.lastSend {
			if !c.worker.Pending(uint32(idx)) {
				continue
			}
			if d := c.lastSend[idx].Add(c.rto(idx)); d.Before(readDeadline) {
				readDeadline = d
			}
		}
		if err := c.conn.SetReadDeadline(readDeadline); err != nil {
			return nil, err
		}
		n, err := c.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if err := c.sweepTimeouts(); err != nil {
					return nil, err
				}
				continue
			}
			return nil, err
		}
		p, err := packet.Unmarshal(buf[:n])
		if err != nil {
			continue // corrupted datagram
		}
		next, done := c.worker.HandleResult(p)
		if next != nil || done || !c.worker.Pending(p.Idx) {
			if int(p.Idx) < len(c.backoff) {
				c.backoff[p.Idx] = 0
			}
		}
		if next != nil {
			if err := c.send(next); err != nil {
				return nil, err
			}
		}
		if done {
			out := make([]int32, len(u))
			copy(out, c.worker.Aggregate())
			return out, nil
		}
	}
}

// send transmits an update and stamps its slot timer.
func (c *Client) send(p *packet.Packet) error {
	if _, err := c.conn.Write(p.Marshal()); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	c.lastSend[p.Idx] = time.Now()
	return nil
}

// rto returns slot idx's effective timeout with backoff applied.
func (c *Client) rto(idx int) time.Duration {
	return c.cfg.RTO << c.backoff[idx]
}

// sweepTimeouts retransmits every pending chunk whose RTO elapsed
// (Algorithm 4 lines 20-23), doubling that slot's timeout.
func (c *Client) sweepTimeouts() error {
	now := time.Now()
	for idx := range c.lastSend {
		if !c.worker.Pending(uint32(idx)) {
			continue
		}
		if now.Sub(c.lastSend[idx]) < c.rto(idx) {
			continue
		}
		if c.backoff[idx] < 6 {
			c.backoff[idx]++
		}
		if p := c.worker.Retransmit(uint32(idx)); p != nil {
			if err := c.send(p); err != nil {
				return err
			}
		}
	}
	return nil
}
