package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"switchml/internal/core"
	"switchml/internal/faults"
	"switchml/internal/netio"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// ClientConfig configures a worker endpoint.
type ClientConfig struct {
	// Aggregator is the UDP address of the software aggregator (or a
	// SwitchML-speaking switch).
	Aggregator string
	// Standbys ranks warm-standby aggregators behind the primary: the
	// failover ladder's middle rungs. When the silence detector trips,
	// the job is re-homed to the first answering rung through the
	// KindAdoptJob handshake (failover.go) instead of degrading
	// straight to the host mesh; the mesh remains the rung of last
	// resort (and needs Fallback configured). Every standby must run
	// the same SwitchConfig as the primary.
	Standbys []string
	// JitterSeed seeds the ±10% spread applied to the heartbeat, probe
	// and adoption-retransmission timers, so a fleet of workers does
	// not synchronize its control traffic against a recovering
	// aggregator. Zero derives a deterministic seed from the worker id;
	// replay harnesses set it explicitly.
	JitterSeed int64
	// Worker is the protocol configuration; it must agree with the
	// aggregator's SwitchConfig on Workers, PoolSize, SlotElems and
	// LossRecovery.
	Worker core.WorkerConfig
	// RTO is the retransmission timeout; zero selects 50 ms, generous
	// for a LAN (the paper's testbed uses 1 ms; over real kernels a
	// larger value avoids spurious retransmissions under scheduling
	// jitter).
	RTO time.Duration
	// AdaptiveRTO estimates the path RTT from clean (never
	// retransmitted — Karn's rule) chunk round trips and uses
	// SRTT + 4·RTTVAR as the base timeout, clamped to [RTO, 64×RTO].
	// The configured RTO then acts as a floor rather than the
	// operating point, so one setting serves both loopback and a
	// congested fabric.
	AdaptiveRTO bool
	// Fallback, when non-nil, arms the degraded mode: an aggregator
	// silent past FallbackConfig.SuspectAfter is abandoned mid-tensor
	// at the chunk frontier and the job continues by ring all-reduce
	// over a worker-to-worker UDP mesh, failing back automatically
	// once probes are answered again (see fallback.go).
	Fallback *FallbackConfig
	// Timeout bounds one AllReduce call; zero selects 30 s.
	Timeout time.Duration
	// Heartbeat, when positive, starts a background beacon at this
	// period so an aggregator-side failure detector does not mistake a
	// worker idle between tensors for a dead one. Leave zero when the
	// aggregator has no Liveness configured.
	Heartbeat time.Duration
	// Batch is the I/O burst ceiling: update sends accumulate into a
	// window block flushed as one batched write (one sendmmsg — a
	// single segmentation-offload train where the kernel supports it),
	// and each receive wakeup drains up to Batch result datagrams in
	// one recvmmsg. Zero selects 32; 1 selects the legacy
	// one-datagram-per-syscall loop (the measurement baseline, and the
	// exact pre-batching behavior).
	Batch int
	// BusyPoll makes the receive path spin briefly on an empty socket
	// before parking in the netpoller, trading CPU for latency. Only
	// meaningful with Batch > 1.
	BusyPoll bool
	// Inject, when non-nil, applies seeded loss, duplication and
	// corruption to outgoing update datagrams — chaos testing on
	// loopback networks that never misbehave. Control datagrams
	// (report/heartbeat) are sent clean.
	Inject *faults.InjectorConfig
	// Metrics receives the worker protocol and datagram counters. Nil
	// allocates a private registry, available through Registry.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, observes protocol events stamped with
	// wall-clock nanoseconds.
	Tracer telemetry.Tracer
}

// Client is a synchronous SwitchML worker over UDP. It is not safe
// for concurrent use: one AllReduce runs at a time, matching the
// ordered-tensor requirement of the stream protocol (Appendix B).
type Client struct {
	cfg    ClientConfig
	conn   *net.UDPConn
	worker *core.Worker
	reg    *telemetry.Registry
	actor  string
	inj    *faults.PacketInjector

	recvd, corrupt, sent *telemetry.Counter
	// unexpected counts well-formed datagrams whose kind the worker
	// never dispatches (aggregators never send update/report/
	// heartbeat kinds).
	unexpected *telemetry.Counter
	// sendErrs counts datagrams whose socket send failed (batched
	// flushes report per-datagram through netio's OnSendError).
	sendErrs *telemetry.Counter
	// chunkRTT observes clean (never-retransmitted) chunk round trips,
	// the per-chunk latency view of §7's RTT analysis.
	chunkRTT *telemetry.Histogram
	// Monitoring gauges, written by the AllReduce goroutine at safe
	// points (RTT samples, sweeps, tensor and recovery boundaries) and
	// read lock-free by DebugState and the sampler. They exist because
	// the underlying state (srtt, frontier, pending set) belongs to
	// the AllReduce goroutine and must not be read directly.
	gSRTT, gRTO, gFrontier, gPending, gEpoch, gDegraded *telemetry.Gauge
	// gHome publishes the failover-ladder rung serving the job (0 =
	// primary); the failover counters track re-homes, adoption
	// solicitations, fail-up probes/acks and completed failbacks.
	gHome                                                             *telemetry.Gauge
	failRehomes, failAdopts, failProbes, failProbeAcks, failFailbacks *telemetry.Counter

	// lastSend tracks per-slot transmission times for timeout
	// sweeps.
	lastSend []time.Time
	// rbuf/rp/sbuf/cbuf are the receive buffer, decoded packet, send
	// wire buffer and control wire buffer, reused across datagrams so
	// the steady-state AllReduce loop performs no heap allocation.
	// They belong to the AllReduce goroutine (the client is
	// documented as not safe for concurrent use).
	rbuf []byte
	rp   packet.Packet
	sbuf []byte
	cbuf []byte
	// rlen is the payload length of the datagram in rbuf (legacy
	// single-read path).
	rlen int
	// nc is the batched socket view over conn; nil when cfg.Batch == 1
	// (legacy per-packet I/O) or the platform refuses the wrap. txb
	// accumulates marshalled updates of txSeg bytes each — the window
	// pump — flushed as one segment train by flushTx. stageErr carries
	// the first send failure out of netio's OnSendError callback (which
	// fires on the AllReduce goroutine, inside Flush) to the next
	// flushTx caller.
	nc       *netio.Conn
	txb      []byte
	txSeg    int
	stageErr error
	// backoff counts consecutive timeouts per slot; the effective RTO
	// doubles with each (capped at 64x), preventing retransmission
	// storms when the configured RTO sits below the path RTT.
	backoff []uint8
	// retxed marks slots whose in-flight chunk has been retransmitted:
	// their round trips are ambiguous and excluded from the RTT
	// estimator (Karn's rule).
	retxed []bool
	// srtt/rttvar are the Jacobson estimator state when AdaptiveRTO is
	// on; srtt == 0 means no sample yet.
	srtt, rttvar time.Duration
	// lastProgress is the last time the aggregator proved it was alive
	// (any decodable datagram on the main connection); the fallback's
	// silence detector measures from it.
	lastProgress time.Time
	// epoch is the job generation last adopted from a resume
	// directive; it dedups repeated directives for the same recovery.
	epoch uint16
	// fb is the degraded-mode state; nil unless cfg.Fallback is set.
	fb *fallback
	// Elastic-membership state (elastic_client.go): fenceArmed/fenceGen
	// record a proposed membership change to hold for at the next
	// tensor boundary; drained means Drain completed and every later
	// AllReduce fails fast; stateProvider is the model snapshot served
	// to joiners over the mesh; mbuf/mp are the mesh-serving receive
	// buffer and decoded packet. All belong to the AllReduce goroutine.
	fenceArmed    bool
	fenceGen      uint16
	drained       bool
	stateProvider func() []int32
	mbuf          []byte
	mp            packet.Packet

	// Warm-standby failover state (failover.go). ladder holds the
	// resolved aggregator addresses in preference order (rank 0 is the
	// primary, then cfg.Standbys); homeRank is the rung currently
	// serving the job. upSeq/upAwait/upStreak run the fail-up
	// probation against rank 0 while the job lives on a standby, over
	// the dedicated upConn socket. frng jitters the AllReduce
	// goroutine's control timers (the heartbeat goroutine seeds its
	// own stream). All belong to the AllReduce goroutine except the
	// atomics: hbConn is the heartbeat goroutine's view of the main
	// connection, swapped on re-home; upConn and ncDbg are also read
	// by Close and DebugState; retiredRetries accumulates the send
	// retries of batched views retired by re-homes.
	ladder         []*net.UDPAddr
	homeRank       int
	upSeq          uint32
	upAwait        bool
	upStreak       int
	frng           *rand.Rand
	hbConn         atomic.Pointer[net.UDPConn]
	upConn         atomic.Pointer[net.UDPConn]
	ncDbg          atomic.Pointer[netio.Conn]
	retiredRetries atomic.Uint64

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewClient binds a local UDP socket and prepares the worker state
// machine.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.RTO == 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	cfg.Worker.Metrics = reg
	w, err := core.NewWorker(cfg.Worker)
	if err != nil {
		return nil, err
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.Aggregator)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", cfg.Aggregator, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	ladder := []*net.UDPAddr{raddr}
	for i, s := range cfg.Standbys {
		sa, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: resolve standby %d %q: %w", i, s, err)
		}
		ladder = append(ladder, sa)
	}
	var inj *faults.PacketInjector
	if cfg.Inject != nil {
		inj, err = faults.NewPacketInjector(*cfg.Inject)
		if err != nil {
			conn.Close()
			return nil, err
		}
	}
	if cfg.Batch == 0 {
		cfg.Batch = DefaultBatch
	}
	id := fmt.Sprintf("%d", cfg.Worker.ID)
	c := &Client{
		cfg:        cfg,
		conn:       conn,
		worker:     w,
		reg:        reg,
		actor:      "w" + id,
		inj:        inj,
		recvd:      reg.Counter("udp_datagrams_received_total", "role", "worker", "worker", id),
		corrupt:    reg.Counter("udp_datagrams_corrupted_total", "role", "worker", "worker", id),
		sent:       reg.Counter("udp_datagrams_sent_total", "role", "worker", "worker", id),
		sendErrs:   reg.Counter("udp_send_errors_total", "role", "worker", "worker", id),
		unexpected: reg.Counter("udp_unexpected_kind_total", "role", "worker", "worker", id),
		chunkRTT:   reg.Histogram("worker_chunk_rtt_ns", telemetry.LatencyBuckets, "worker", id),
		gSRTT:      reg.Gauge("worker_srtt_ns", "worker", id),
		gRTO:       reg.Gauge("worker_rto_ns", "worker", id),
		gFrontier:  reg.Gauge("worker_frontier_off", "worker", id),
		gPending:   reg.Gauge("worker_pending_chunks", "worker", id),
		gEpoch:     reg.Gauge("worker_epoch", "worker", id),
		gDegraded:  reg.Gauge("worker_degraded", "worker", id),
		gHome:      reg.Gauge("worker_home_rank", "worker", id),
		lastSend:   make([]time.Time, cfg.Worker.PoolSize),
		rbuf:       make([]byte, 65536),
		backoff:    make([]uint8, cfg.Worker.PoolSize),
		retxed:     make([]bool, cfg.Worker.PoolSize),
		epoch:      cfg.Worker.JobID,
		ladder:     ladder,
		frng:       rand.New(rand.NewSource(jitterSeed(&cfg, 1))),
		closed:     make(chan struct{}),
	}
	c.failRehomes = reg.Counter("failover_rehomes_total", "worker", id)
	c.failAdopts = reg.Counter("failover_adopt_requests_total", "worker", id)
	c.failProbes = reg.Counter("failover_probes_total", "worker", id)
	c.failProbeAcks = reg.Counter("failover_probe_acks_total", "worker", id)
	c.failFailbacks = reg.Counter("failover_failbacks_total", "worker", id)
	c.hbConn.Store(conn)
	c.wrapMain(conn)
	if cfg.Fallback != nil {
		fc := *cfg.Fallback
		fc.fillDefaults(cfg.RTO)
		var laddr *net.UDPAddr
		if fc.Listen != "" {
			laddr, err = net.ResolveUDPAddr("udp", fc.Listen)
			if err != nil {
				conn.Close()
				return nil, fmt.Errorf("transport: mesh listen address: %w", err)
			}
		}
		mesh, err := net.ListenUDP("udp", laddr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: bind mesh socket: %w", err)
		}
		c.fb = &fallback{cfg: fc, mesh: mesh}
		if err := c.fb.resolvePeers(fc.Peers, int(cfg.Worker.ID)); err != nil {
			mesh.Close()
			conn.Close()
			return nil, err
		}
		if cfg.Batch > 1 {
			if mnc, err := netio.Wrap(mesh, netio.Config{
				Batch: cfg.Batch,
				MTU:   aggWireMTU(fc.SegElems),
				OnSendError: func(err error, n int) {
					c.sendErrs.Add(uint64(n))
				},
			}); err == nil {
				c.fb.nc = mnc
			}
		}
	}
	c.gRTO.Set(int64(cfg.RTO))
	c.gEpoch.Set(int64(cfg.Worker.JobID))
	if cfg.Heartbeat > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop()
	}
	return c, nil
}

// Close stops the heartbeat beacon and releases the sockets. The
// main connection is reached through the atomic pointer because a
// re-home may have replaced it since construction.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		if conn := c.hbConn.Load(); conn != nil {
			err = conn.Close()
		}
		if uc := c.upConn.Load(); uc != nil {
			uc.Close()
		}
		if c.fb != nil {
			c.fb.mesh.Close()
		}
		c.wg.Wait()
	})
	return err
}

// heartbeatLoop is the liveness beacon: a tiny control datagram at
// the configured period — jittered ±10% from its own seeded stream so
// a fleet's beacons decohere — so silence between tensors is never
// mistaken for death. It deliberately reads only immutable config and
// the atomic connection pointer (the worker state machine belongs to
// the AllReduce goroutine, and a re-home may swap the socket under
// it); the aggregator's tracker ignores the possibly-stale generation
// stamp.
func (c *Client) heartbeatLoop() {
	defer c.wg.Done()
	rng := rand.New(rand.NewSource(jitterSeed(&c.cfg, 2)))
	t := time.NewTimer(jitterDur(rng, c.cfg.Heartbeat))
	defer t.Stop()
	hb := packet.NewControl(packet.KindHeartbeat, c.cfg.Worker.ID, c.cfg.Worker.JobID, 0, nil).Marshal()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			if conn := c.hbConn.Load(); conn != nil {
				if _, err := conn.Write(hb); err == nil {
					c.sent.Inc()
				}
			}
			t.Reset(jitterDur(rng, c.cfg.Heartbeat))
		}
	}
}

// Registry returns the metrics registry backing this client's
// counters — the one from the config, or the private registry
// allocated when none was supplied.
func (c *Client) Registry() *telemetry.Registry { return c.reg }

// Stats returns the worker state machine counters. The counters are
// atomic, so this is safe to call from a monitoring goroutine while
// AllReduceInt32 runs.
func (c *Client) Stats() core.WorkerStats { return c.worker.Stats() }

// trace emits a protocol event stamped with wall-clock time.
func (c *Client) trace(t telemetry.EventType, idx int32) {
	if c.cfg.Tracer == nil {
		return
	}
	e := telemetry.Ev(t, telemetry.WallClock())
	e.Actor = c.actor
	e.Worker = int32(c.cfg.Worker.ID)
	e.Slot = idx
	c.cfg.Tracer.Emit(e)
}

// AllReduceInt32 aggregates u with the other workers and returns the
// elementwise sum. It blocks until the aggregate is complete or the
// configured timeout elapses. With a Fallback configured the call
// survives aggregator death: the tensor is finished (and subsequent
// ones run) over the worker mesh instead of failing; without one, an
// aggregator silent for SuspectAfter-equivalent (8×RTO) turns the
// timeout into a typed, retryable ErrAggregatorSilent.
func (c *Client) AllReduceInt32(u []int32) ([]int32, error) {
	if len(u) == 0 {
		return nil, nil
	}
	if c.drained {
		return nil, ErrDrained
	}
	if c.cfg.Tracer != nil {
		e := telemetry.Ev(telemetry.EvTensorStart, telemetry.WallClock())
		e.Actor = c.actor
		e.Worker = int32(c.cfg.Worker.ID)
		e.Size = int32(4 * len(u))
		c.cfg.Tracer.Emit(e)
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	if c.fb != nil && c.fb.degraded.Load() {
		return c.degradedAllReduce(u, deadline)
	}
	c.lastProgress = time.Now()
	if c.homeRank > 0 {
		// The job lives on a standby: run one round of the fail-up
		// probation before starting the tensor (failover.go).
		if err := c.failUpTick(deadline); err != nil {
			return nil, err
		}
		c.lastProgress = time.Now()
	}
	if c.fenceArmed {
		// A membership change is pending and this call sits exactly at
		// the tensor boundary: hold until the fence commits. A §5.6
		// recovery superseding the fence may re-open the previous
		// tensor; drive it back to completion (the re-aggregated result
		// is the survivors', already superseded for this worker) before
		// starting the new one.
		reopened, err := c.holdAtFence(deadline)
		if err != nil {
			return nil, err
		}
		if reopened {
			if _, err := c.switchLoop(c.worker.Update(), deadline); err != nil {
				return nil, err
			}
		}
	}
	for _, p := range c.worker.Start(u) {
		err := c.send(p, false)
		packet.PutPacket(p)
		if err != nil {
			return nil, err
		}
	}
	if err := c.flushTx(); err != nil {
		return nil, err
	}
	out, err := c.switchLoop(u, deadline)
	if errors.Is(err, errSilence) {
		return c.degradeLadder(u, deadline)
	}
	return out, err
}

// canDegrade reports whether someone can take over for a dead
// aggregator — a standby ladder, a host mesh, or both — which makes a
// provably-dead destination evidence for the silence clock rather
// than a caller error.
func (c *Client) canDegrade() bool { return c.fb != nil || len(c.ladder) > 1 }

// silenceAfter is the no-progress threshold that separates "switch
// gone" from an ordinarily slow aggregation.
func (c *Client) silenceAfter() time.Duration {
	if c.fb != nil {
		return c.fb.cfg.SuspectAfter
	}
	return 8 * c.cfg.RTO
}

// switchLoop drives the started tensor over the aggregator path until
// completion, timeout, or — with a Fallback configured — the silence
// verdict (returned as errSilence for the caller to degrade on).
func (c *Client) switchLoop(u []int32, deadline time.Time) ([]int32, error) {
	for {
		if silence := time.Since(c.lastProgress); silence >= c.silenceAfter() {
			if c.fb != nil || len(c.ladder) > 1 {
				// Someone can take over: a host mesh, a standby ladder,
				// or both. Deliver the silence verdict and let
				// degradeLadder pick the next rung.
				c.trace(telemetry.EvSwitchSuspect, -1)
				return nil, errSilence
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("transport: all-reduce timed out after %v with the aggregator silent for %v (%d chunks outstanding): %w",
					c.cfg.Timeout, silence.Round(time.Millisecond), c.worker.PendingCount(), ErrAggregatorSilent)
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: all-reduce timed out after %v (%d chunks outstanding)",
				c.cfg.Timeout, c.worker.PendingCount())
		}
		// Wake at the earliest pending retransmission deadline.
		readDeadline := time.Now().Add(c.cfg.RTO)
		for idx := range c.lastSend {
			if !c.worker.Pending(uint32(idx)) {
				continue
			}
			if d := c.lastSend[idx].Add(c.rto(idx)); d.Before(readDeadline) {
				readDeadline = d
			}
		}
		// Retransmissions staged by the previous sweep (and any sends a
		// prior burst generated) must reach the wire before blocking.
		if err := c.flushTx(); err != nil {
			return nil, err
		}
		if err := c.conn.SetReadDeadline(readDeadline); err != nil {
			return nil, err
		}
		nm, err := c.recvBurst()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if err := c.sweepTimeouts(); err != nil {
					return nil, err
				}
				continue
			}
			if c.canDegrade() {
				// A refused or unreachable destination is death
				// evidence, not a caller error: let the silence clock
				// decide, pacing the retry loop meanwhile.
				time.Sleep(c.cfg.RTO / 8)
				continue
			}
			return nil, err
		}
		c.recvd.Add(uint64(nm))
		for i := 0; i < nm; i++ {
			buf := c.rbuf[:c.rlen]
			if c.nc != nil {
				buf = c.nc.Msgs[i].Buf
			}
			if err := packet.UnmarshalInto(&c.rp, buf); err != nil {
				c.corrupt.Inc()
				continue // corrupted datagram
			}
			c.lastProgress = time.Now()
			done, err := c.handleIncoming(&c.rp)
			if err != nil {
				return nil, err
			}
			if done {
				c.trace(telemetry.EvTensorDone, -1)
				c.gFrontier.Set(int64(c.worker.FrontierOff()))
				c.gPending.Set(0)
				if err := c.flushTx(); err != nil {
					return nil, err
				}
				out := make([]int32, len(u))
				copy(out, c.worker.Aggregate())
				return out, nil
			}
		}
	}
}

// recvBurst blocks for the next burst of result datagrams: up to
// cfg.Batch through the batched socket view, or exactly one through
// the legacy read (rbuf/rlen).
func (c *Client) recvBurst() (int, error) {
	if c.nc != nil {
		return c.nc.Recv()
	}
	n, err := c.conn.Read(c.rbuf)
	if err != nil {
		return 0, err
	}
	c.rlen = n
	return 1, nil
}

// handleIncoming dispatches one datagram from the aggregator. Results
// feed the protocol state machine; reconfigure and resume directives
// run the worker's half of the §5.6 recovery handshake.
func (c *Client) handleIncoming(p *packet.Packet) (bool, error) {
	//switchml:dispatch
	switch p.Kind {
	case packet.KindReconfig:
		if p.Ver == 1 {
			// An elastic-membership fence: finish this tensor, then
			// hold at the boundary (elastic_client.go).
			return false, c.armFence(p)
		}
		// A membership change is in effect. A worker absent from the
		// survivor vector has been declared failed: its updates will
		// never be aggregated again, so failing fast beats timing out.
		member := false
		for _, w := range p.Vector {
			if w == int32(c.cfg.Worker.ID) {
				member = true
				break
			}
		}
		if !member {
			return false, fmt.Errorf("transport: worker %d evicted from job (generation %d)",
				c.cfg.Worker.ID, p.JobID)
		}
		// Report the progress frontier; the directive may arrive again
		// if this report is lost, and reporting is idempotent.
		return false, c.sendControl(packet.KindReport, p.JobID, c.worker.FrontierOff(), nil)
	case packet.KindResume:
		if p.JobID == c.epoch {
			return false, nil // repeated directive for an adopted generation
		}
		pkts, err := c.worker.ResumeAt(p.JobID, p.Off)
		if err != nil {
			return false, fmt.Errorf("transport: resume at %d: %w", p.Off, err)
		}
		c.epoch = p.JobID
		c.gEpoch.Set(int64(p.JobID))
		c.trace(telemetry.EvResume, -1)
		for i := range c.backoff {
			c.backoff[i] = 0
			c.retxed[i] = false
		}
		for _, q := range pkts {
			err := c.send(q, false)
			packet.PutPacket(q)
			if err != nil {
				return false, err
			}
		}
		return false, nil
	case packet.KindResult, packet.KindResultUnicast:
		if c.cfg.AdaptiveRTO && int(p.Idx) < len(c.retxed) && !c.retxed[p.Idx] && c.worker.Pending(p.Idx) {
			// A clean (never retransmitted) in-flight chunk's round
			// trip is an unambiguous RTT sample (Karn's rule).
			c.observeRTT(time.Since(c.lastSend[p.Idx]))
		}
		next, done := c.worker.HandleResult(p)
		if next != nil || done || !c.worker.Pending(p.Idx) {
			// The slot made progress (or is idle): its loss streak is
			// over, so the backoff resets to the base RTO.
			if int(p.Idx) < len(c.backoff) {
				c.backoff[p.Idx] = 0
			}
		}
		if next != nil {
			err := c.send(next, false)
			packet.PutPacket(next)
			if err != nil {
				return false, err
			}
		}
		return done, nil
	default:
		// Aggregators never send update/report/heartbeat kinds; count
		// the drop so a confused aggregator is visible.
		c.unexpected.Inc()
		return false, nil
	}
}

// send transmits an update and stamps its slot timer, consulting the
// fault injector. An injected drop still stamps the timer — the
// packet was "lost on the wire", and the retransmission machinery is
// exactly what recovers it. The wire bytes go through the client's
// reused send buffer; callers that got p from the packet pool may
// return it as soon as send returns. retx flags retransmissions,
// whose round trips the RTT estimator must ignore.
func (c *Client) send(p *packet.Packet, retx bool) error {
	c.lastSend[p.Idx] = time.Now()
	if int(p.Idx) < len(c.retxed) {
		c.retxed[p.Idx] = retx
	}
	c.sbuf = p.AppendMarshal(c.sbuf[:0])
	if c.nc != nil && c.inj == nil {
		c.stageTx()
		return nil
	}
	out := c.sbuf
	writes := 1
	if c.inj != nil {
		switch c.inj.Judge() {
		case faults.Drop:
			return nil
		case faults.Corrupt:
			c.inj.Mangle(out)
		case faults.Duplicate:
			writes = 2
		}
	}
	for i := 0; i < writes; i++ {
		if _, err := c.conn.Write(out); err != nil {
			if c.canDegrade() && deadDestination(err) {
				return nil
			}
			return fmt.Errorf("transport: send: %w", err)
		}
		c.sent.Inc()
	}
	return nil
}

// stageTx appends the marshalled update in sbuf to the window block.
// Updates are equal-size in the steady state (every full chunk
// marshals to the same wire length), so the block flushes as one
// segment train; a size change or a full block flushes eagerly first.
func (c *Client) stageTx() {
	if c.txSeg != 0 && (len(c.sbuf) != c.txSeg || len(c.txb)+len(c.sbuf) > cap(c.txb)) {
		c.flushTxBlock()
	}
	c.txSeg = len(c.sbuf)
	c.txb = append(c.txb, c.sbuf...)
	c.sent.Inc()
}

// flushTxBlock pushes the staged window block to the kernel. The
// block is handed to AppendTrain unaliased-safe: netio may reference
// it until Flush returns, so the reset happens after.
func (c *Client) flushTxBlock() {
	if len(c.txb) == 0 {
		return
	}
	c.nc.AppendTrain(c.txb, c.txSeg, netip.AddrPort{})
	c.nc.Flush()
	c.txb = c.txb[:0]
	c.txSeg = 0
}

// flushTx drains the staged window and surfaces the first send error
// netio reported since the last flush. With a fallback armed, a
// provably-dead destination is death evidence for the silence clock
// rather than a caller error — matching the legacy direct-write path.
func (c *Client) flushTx() error {
	if c.nc == nil {
		return nil
	}
	c.flushTxBlock()
	c.nc.Flush()
	if err := c.stageErr; err != nil {
		c.stageErr = nil
		if c.canDegrade() && deadDestination(err) {
			return nil
		}
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// deadDestination reports whether a datagram write failed because the
// destination is provably gone — an ICMP unreachable surfaced by the
// connected socket (the aggregator process died and the kernel
// rejects the port) — rather than a local socket error. With a
// fallback armed that is death evidence for the silence detector, not
// a caller error: the datagram counts as lost on the wire, and the
// no-progress clock delivers the degrade verdict.
func deadDestination(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENETUNREACH)
}

// sendControl transmits a control datagram (report, heartbeat)
// bypassing the fault injector: on a real network control loss is
// repaired by the aggregator's sweep-period rebroadcast.
func (c *Client) sendControl(kind packet.Kind, job uint16, off uint64, vec []int32) error {
	c.cbuf = packet.NewControl(kind, c.cfg.Worker.ID, job, off, vec).AppendMarshal(c.cbuf[:0])
	if _, err := c.conn.Write(c.cbuf); err != nil {
		if c.canDegrade() && deadDestination(err) {
			return nil
		}
		return fmt.Errorf("transport: send: %w", err)
	}
	c.sent.Inc()
	return nil
}

// rto returns slot idx's effective timeout: the base RTO — adapted to
// the estimated RTT when configured — with the slot's exponential
// backoff applied.
func (c *Client) rto(idx int) time.Duration {
	base := c.cfg.RTO
	if c.cfg.AdaptiveRTO && c.srtt > 0 {
		base = c.srtt + 4*c.rttvar
		if base < c.cfg.RTO {
			base = c.cfg.RTO
		}
		if max := c.cfg.RTO * 64; base > max {
			base = max
		}
	}
	return base << c.backoff[idx]
}

// observeRTT folds a clean round-trip sample into the Jacobson
// estimator (RFC 6298 constants: α=1/8, β=1/4) and publishes the
// latency view: the per-chunk RTT histogram and the srtt/rto gauges.
func (c *Client) observeRTT(sample time.Duration) {
	if sample <= 0 {
		return
	}
	c.chunkRTT.Observe(float64(sample))
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar += (diff - c.rttvar) / 4
		c.srtt += (sample - c.srtt) / 8
	}
	c.gSRTT.Set(int64(c.srtt))
	base := c.srtt + 4*c.rttvar
	if base < c.cfg.RTO {
		base = c.cfg.RTO
	}
	if max := c.cfg.RTO * 64; base > max {
		base = max
	}
	c.gRTO.Set(int64(base))
}

// sweepTimeouts retransmits every pending chunk whose RTO elapsed
// (Algorithm 4 lines 20-23), doubling that slot's timeout. Sweeps are
// also the mid-tensor publication point for the frontier and pending
// gauges: frequent enough to be live, rare enough that the
// O(chunks) frontier scan never shadows packet handling.
func (c *Client) sweepTimeouts() error {
	c.gPending.Set(int64(c.worker.PendingCount()))
	c.gFrontier.Set(int64(c.worker.FrontierOff()))
	now := time.Now()
	for idx := range c.lastSend {
		if !c.worker.Pending(uint32(idx)) {
			continue
		}
		if now.Sub(c.lastSend[idx]) < c.rto(idx) {
			continue
		}
		if c.backoff[idx] < 6 {
			c.backoff[idx]++
		}
		c.trace(telemetry.EvTimeoutFired, int32(idx))
		if p := c.worker.Retransmit(uint32(idx)); p != nil {
			c.trace(telemetry.EvRetransmit, int32(idx))
			err := c.send(p, true)
			packet.PutPacket(p)
			if err != nil {
				return err
			}
		}
	}
	return nil
}
