package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"switchml/internal/core"
	"switchml/internal/faults"
	"switchml/internal/netsim"
)

// failoverOpts parameterizes a failover cluster: a primary aggregator,
// ranked warm standbys, and n clients with the ladder configured.
type failoverOpts struct {
	workers  int
	standbys int
	quorum   int
	// fallback, when non-nil, also arms the host mesh behind the ladder.
	fallback *FallbackConfig
	// inject applies a per-worker fault injector (nil entries are clean).
	inject  map[int]*faults.InjectorConfig
	timeout time.Duration
}

// failoverCluster binds 1+standbys aggregators sharing one switch
// config and n clients homed on the first with the rest ranked as
// standbys, ready for lockstep steps.
func failoverCluster(t *testing.T, o failoverOpts) ([]*Aggregator, []*Client) {
	t.Helper()
	swcfg := core.SwitchConfig{
		Workers: o.workers, PoolSize: 8, SlotElems: 32,
		LossRecovery: true, Quorum: o.quorum,
	}
	aggs := make([]*Aggregator, 1+o.standbys)
	for i := range aggs {
		agg, err := NewAggregator(AggregatorConfig{Addr: "127.0.0.1:0", Switch: swcfg})
		if err != nil {
			t.Fatal(err)
		}
		aggs[i] = agg
		t.Cleanup(func() { agg.Close() })
	}
	ranked := make([]string, o.standbys)
	for i := range ranked {
		ranked[i] = aggs[1+i].Addr().String()
	}
	clients := make([]*Client, o.workers)
	for i := 0; i < o.workers; i++ {
		c, err := NewClient(ClientConfig{
			Aggregator: aggs[0].Addr().String(),
			Standbys:   ranked,
			Worker: core.WorkerConfig{
				ID: uint16(i), Workers: o.workers, PoolSize: 8, SlotElems: 32, LossRecovery: true,
			},
			RTO:         10 * time.Millisecond,
			Timeout:     o.timeout,
			AdaptiveRTO: true,
			Fallback:    o.fallback,
			Inject:      o.inject[i],
			JitterSeed:  77,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
	}
	if o.fallback != nil {
		mesh := make([]string, o.workers)
		for i, c := range clients {
			mesh[i] = fmt.Sprintf("127.0.0.1:%d", c.MeshAddr().Port)
		}
		for _, c := range clients {
			if err := c.SetMeshPeers(mesh); err != nil {
				t.Fatal(err)
			}
		}
	}
	return aggs, clients
}

// lockstepAgree runs one collective step and checks every worker holds
// the bitwise-identical aggregate. Under quorum the value may exclude
// straggler gradients, so unlike lockstep it asserts agreement, not
// the exact elementwise sum.
func lockstepAgree(t *testing.T, clients []*Client, elems, step int) {
	t.Helper()
	n := len(clients)
	us := make([][]int32, n)
	for w := range us {
		us[w] = make([]int32, elems)
		for j := range us[w] {
			us[w][j] = int32(step*1000 + w*10 + j%7)
		}
	}
	results := make([][]int32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := range clients {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w], errs[w] = clients[w].AllReduceInt32(us[w])
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("step %d worker %d: %v", step, w, err)
		}
	}
	for w := 1; w < n; w++ {
		for j := range results[0] {
			if results[w][j] != results[0][j] {
				t.Fatalf("step %d elem %d: worker %d holds %d, worker 0 holds %d",
					step, j, w, results[w][j], results[0][j])
			}
		}
	}
}

// TestFaultUDPFailoverToStandbyAndFailback is the warm-standby
// tentpole: the primary dies between steps, the workers adopt the job
// onto the standby at full switch rate (never touching the mesh — no
// fallback is even configured), keep producing exact sums, probe the
// revived primary through the fail-up probation window, and climb back
// to rank 0.
func TestFaultUDPFailoverToStandbyAndFailback(t *testing.T) {
	const n, elems = 3, 3000
	aggs, clients := failoverCluster(t, failoverOpts{workers: n, standbys: 1, timeout: 20 * time.Second})
	primary, standby := aggs[0], aggs[1]

	lockstep(t, clients, elems, 1)
	lockstep(t, clients, elems, 2)
	preKill := primary.Stats().Completions
	if preKill == 0 {
		t.Fatal("no switch completions before the kill")
	}

	primary.SetDown(true)
	lockstep(t, clients, elems, 3) // silence → ladder → adopted by the standby
	if got := standby.Adoptions(); got != 1 {
		t.Fatalf("standby adoptions = %d, want 1", got)
	}
	if standby.Stats().Completions == 0 {
		t.Fatal("standby aggregated nothing after adopting the job")
	}
	for w, c := range clients {
		if rank := c.HomeRank(); rank != 1 {
			t.Fatalf("worker %d home rank = %d after the kill, want 1", w, rank)
		}
		st := c.FailoverStats()
		if st.Rehomes == 0 || st.AdoptRequests == 0 {
			t.Fatalf("worker %d failover stats %+v: expected rehomes and adopt requests", w, st)
		}
		if c.Degraded() {
			t.Fatalf("worker %d on the host mesh; the standby should have kept it on the switch path", w)
		}
	}
	lockstep(t, clients, elems, 4) // full rate on the standby

	primary.SetDown(false)
	lockstep(t, clients, elems, 5) // stale probe resolved, fresh probe sent
	lockstep(t, clients, elems, 6) // streak 1
	lockstep(t, clients, elems, 7) // streak 2
	lockstep(t, clients, elems, 8) // streak 3 ≥ probation: climb back to rank 0
	midClimb := primary.Stats().Completions
	lockstep(t, clients, elems, 9)
	for w, c := range clients {
		if rank := c.HomeRank(); rank != 0 {
			t.Fatalf("worker %d home rank = %d after probation, want 0 (stats %+v)", w, rank, c.FailoverStats())
		}
		st := c.FailoverStats()
		if st.Failbacks != 1 {
			t.Fatalf("worker %d failbacks = %d, want 1", w, st.Failbacks)
		}
		if st.Probes == 0 || st.ProbeAcks == 0 {
			t.Fatalf("worker %d failover stats %+v: expected probes and acks", w, st)
		}
	}
	if primary.Stats().Completions <= midClimb {
		t.Fatal("primary aggregated nothing after the failback")
	}
	// One generation for the adoption, one for the climb.
	if got := primary.Epoch(); got != 2 {
		t.Fatalf("primary epoch = %d after failback, want 2", got)
	}
	if got := standby.Epoch(); got != 1 {
		t.Fatalf("standby epoch = %d, want 1", got)
	}
}

// TestFaultUDPFailoverSecondRung kills the primary and the first
// standby together: the ladder walk must skip the dead middle rung and
// adopt the job onto the second standby.
func TestFaultUDPFailoverSecondRung(t *testing.T) {
	const n, elems = 2, 2000
	aggs, clients := failoverCluster(t, failoverOpts{workers: n, standbys: 2, timeout: 20 * time.Second})

	lockstep(t, clients, elems, 1)
	aggs[0].SetDown(true)
	aggs[1].SetDown(true)
	lockstep(t, clients, elems, 2)
	if got := aggs[2].Adoptions(); got != 1 {
		t.Fatalf("second standby adoptions = %d, want 1", got)
	}
	for w, c := range clients {
		if rank := c.HomeRank(); rank != 2 {
			t.Fatalf("worker %d home rank = %d, want 2", w, rank)
		}
	}
	lockstep(t, clients, elems, 3)
}

// TestFaultUDPFailoverLadderDescentToMesh kills every rung: the
// workers walk the whole ladder, find it silent, and only then drop to
// the host mesh — still producing exact sums — before failing back up
// to the revived primary through the mesh probation window.
func TestFaultUDPFailoverLadderDescentToMesh(t *testing.T) {
	const n, elems = 2, 2000
	aggs, clients := failoverCluster(t, failoverOpts{
		workers: n, standbys: 1,
		fallback: &FallbackConfig{Probation: 2},
		timeout:  30 * time.Second,
	})

	lockstep(t, clients, elems, 1)
	aggs[0].SetDown(true)
	aggs[1].SetDown(true)
	lockstep(t, clients, elems, 2) // ladder walked dry → host mesh
	for w, c := range clients {
		if !c.Degraded() {
			t.Fatalf("worker %d not on the host mesh with every rung dead", w)
		}
		if rank := c.HomeRank(); rank != 0 {
			t.Fatalf("worker %d home rank = %d while degraded, want 0 (mesh probes target the primary)", w, rank)
		}
		st := c.FailoverStats()
		if st.AdoptRequests == 0 {
			t.Fatalf("worker %d fell to the mesh without soliciting the standby (stats %+v)", w, st)
		}
		if fb := c.FallbackStats(); fb.Degrades != 1 {
			t.Fatalf("worker %d mesh degrades = %d, want 1", w, fb.Degrades)
		}
	}
	lockstep(t, clients, elems, 3) // mesh carries traffic

	aggs[0].SetDown(false)
	lockstep(t, clients, elems, 4) // probe 1
	lockstep(t, clients, elems, 5) // streak 1, probe 2
	lockstep(t, clients, elems, 6) // streak 2 ≥ probation: mesh failback
	lockstep(t, clients, elems, 7)
	for w, c := range clients {
		if c.Degraded() {
			t.Fatalf("worker %d still degraded after the primary revived", w)
		}
	}
	if aggs[0].Stats().Completions == 0 {
		t.Fatal("primary aggregated nothing after the mesh failback")
	}
}

// TestFaultUDPFailoverAllRungsSilentNoMesh is the no-safety-net
// verdict: with every rung dead and no fallback configured, the
// collective must fail fast with the typed retryable error instead of
// hanging to the deadline.
func TestFaultUDPFailoverAllRungsSilentNoMesh(t *testing.T) {
	const n, elems = 2, 2000
	aggs, clients := failoverCluster(t, failoverOpts{workers: n, standbys: 1, timeout: 10 * time.Second})

	lockstep(t, clients, elems, 1)
	aggs[0].SetDown(true)
	aggs[1].SetDown(true)
	start := time.Now()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := range clients {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			u := make([]int32, elems)
			_, errs[w] = clients[w].AllReduceInt32(u)
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if !errors.Is(err, ErrAggregatorSilent) {
			t.Fatalf("worker %d error = %v, want ErrAggregatorSilent", w, err)
		}
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("silent-ladder verdict took %v; it should not ride out the deadline", took)
	}
}

// TestFaultFailoverWithQuorumStraggler is the chaos crossover: quorum
// mode lets slots complete without worker 2, whose updates ride a
// Gilbert–Elliott burst-loss process, while the primary dies mid-run.
// The membership must fence at the chunk frontier, adopt the job onto
// the standby, reconcile the straggler's late updates, and climb back
// after probation — with every worker holding the bitwise-identical
// aggregate at every step. The tensor fits both slot-pool versions
// (elems ≤ 2·PoolSize·SlotElems) so no straggler phase is ever
// evicted: divergent gone-reply self-completions cannot occur and
// agreement is deterministic.
func TestFaultFailoverWithQuorumStraggler(t *testing.T) {
	const n, elems = 3, 512
	aggs, clients := failoverCluster(t, failoverOpts{
		workers: n, standbys: 1, quorum: 2,
		inject: map[int]*faults.InjectorConfig{
			2: {Seed: 42, Burst: &netsim.GEConfig{
				PGoodToBad: 0.2, PBadToGood: 0.3, LossBad: 0.95,
			}},
		},
		timeout: 20 * time.Second,
	})
	primary, standby := aggs[0], aggs[1]

	lockstepAgree(t, clients, elems, 1)
	lockstepAgree(t, clients, elems, 2)

	primary.SetDown(true)
	lockstepAgree(t, clients, elems, 3) // kill → adopt, straggler frontier fenced
	if got := standby.Adoptions(); got != 1 {
		t.Fatalf("standby adoptions = %d, want 1", got)
	}
	for w, c := range clients {
		if rank := c.HomeRank(); rank != 1 {
			t.Fatalf("worker %d home rank = %d after the kill, want 1", w, rank)
		}
	}
	lockstepAgree(t, clients, elems, 4)
	lockstepAgree(t, clients, elems, 5)

	primary.SetDown(false)
	for step := 6; step <= 9; step++ { // stale probe + 3-tensor probation
		lockstepAgree(t, clients, elems, step)
	}
	lockstepAgree(t, clients, elems, 10)
	for w, c := range clients {
		if rank := c.HomeRank(); rank != 0 {
			t.Fatalf("worker %d home rank = %d after probation, want 0 (stats %+v)", w, rank, c.FailoverStats())
		}
	}
	quorumShort := primary.Stats().QuorumCompletions + standby.Stats().QuorumCompletions
	if quorumShort == 0 {
		t.Fatal("burst loss never left the straggler out of a quorum completion")
	}
	if got := primary.Epoch(); got != 2 {
		t.Fatalf("primary epoch = %d after failback, want 2", got)
	}
}

// TestFaultUDPFailoverStatsRace hammers the monitoring surface —
// DebugState, FailoverStats, HomeRank — from a separate goroutine
// through a full kill → adopt → failback cycle, for the race detector:
// re-homing swaps sockets and I/O views under concurrent reads.
func TestFaultUDPFailoverStatsRace(t *testing.T) {
	const n, elems = 2, 2000
	aggs, clients := failoverCluster(t, failoverOpts{workers: n, standbys: 1, timeout: 20 * time.Second})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, c := range clients {
				_ = c.DebugState()
				_ = c.FailoverStats()
				_ = c.HomeRank()
			}
			for _, a := range aggs {
				_ = a.DebugState(false)
			}
		}
	}()

	lockstep(t, clients, elems, 1)
	aggs[0].SetDown(true)
	lockstep(t, clients, elems, 2)
	aggs[0].SetDown(false)
	for step := 3; step <= 7; step++ {
		lockstep(t, clients, elems, step)
	}
	close(stop)
	wg.Wait()
	for w, c := range clients {
		if rank := c.HomeRank(); rank != 0 {
			t.Fatalf("worker %d home rank = %d at the end of the cycle, want 0", w, rank)
		}
	}
}
