package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"switchml/internal/core"
	"switchml/internal/faults"
	"switchml/internal/packet"
)

// checkBoundary verifies the post-recovery aggregate shape: a prefix
// of full-membership sums, a suffix of survivor-only sums, and a
// single transition aligned to a chunk boundary.
func checkBoundary(t *testing.T, got []int32, full, surv int32, k int) int {
	t.Helper()
	boundary := -1
	for j, v := range got {
		switch {
		case boundary < 0 && v == full:
			continue
		case boundary < 0 && v == surv:
			boundary = j
		case boundary >= 0 && v == surv:
			continue
		default:
			t.Fatalf("elem %d: got %d, want %d (full) before the boundary or %d (survivors) after", j, v, full, surv)
		}
	}
	if boundary < 0 {
		boundary = len(got)
	}
	if boundary%k != 0 {
		t.Fatalf("recovery boundary %d is not aligned to the %d-element chunk size", boundary, k)
	}
	return boundary
}

// TestFaultUDPInjectorLoss pushes a tensor through clients and an
// aggregator that all drop, duplicate and corrupt datagrams via the
// seeded injector; retransmission and the checksum must still produce
// exact sums.
func TestFaultUDPInjectorLoss(t *testing.T) {
	const n, s, k, d = 2, 4, 16, 3000
	agg, err := NewAggregator(AggregatorConfig{
		Addr: "127.0.0.1:0",
		Switch: core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		},
		Inject: &faults.InjectorConfig{Seed: 99, DropRate: 0.05, DupRate: 0.02, CorruptRate: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	updates := make([][]int32, n)
	want := make([]int32, d)
	for i := range updates {
		updates[i] = make([]int32, d)
		for j := range updates[i] {
			updates[i][j] = int32(i*7 + j%13)
			want[j] += updates[i][j]
		}
	}
	results := make([][]int32, n)
	errs := make([]error, n)
	retx := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewClient(ClientConfig{
				Aggregator: agg.Addr().String(),
				Worker: core.WorkerConfig{
					ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
				},
				RTO:     15 * time.Millisecond,
				Timeout: 20 * time.Second,
				Inject:  &faults.InjectorConfig{Seed: int64(i + 1), DropRate: 0.05, DupRate: 0.02, CorruptRate: 0.02},
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			results[i], errs[i] = c.AllReduceInt32(updates[i])
			retx[i] = c.Stats().Retransmissions
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		for j := range want {
			if results[i][j] != want[j] {
				t.Fatalf("worker %d elem %d: got %d want %d", i, j, results[i][j], want[j])
			}
		}
	}
	if retx[0]+retx[1] == 0 {
		t.Error("injector was configured but no retransmissions happened")
	}
}

// TestFaultUDPWorkerCrashRecovery is the §5.6 failure path over real
// sockets: a ghost worker joins with its initial window and then goes
// silent mid-tensor. The aggregator's detector must evict it, walk
// the survivors through reconfigure/report/resume, and let them
// finish with survivor-only sums past the recovery frontier.
func TestFaultUDPWorkerCrashRecovery(t *testing.T) {
	const n, s, k, d = 3, 4, 32, 4000
	agg, err := NewAggregator(AggregatorConfig{
		Addr: "127.0.0.1:0",
		Switch: core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		},
		Liveness: &LivenessConfig{SilenceAfter: 250 * time.Millisecond, CheckEvery: 60 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// The ghost: a protocol-correct initial window from worker 2, then
	// silence forever.
	ghostCfg := core.WorkerConfig{ID: 2, Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true}
	ghost, err := core.NewWorker(ghostCfg)
	if err != nil {
		t.Fatal(err)
	}
	ghostU := make([]int32, d)
	for j := range ghostU {
		ghostU[j] = 3
	}
	gconn, err := net.DialUDP("udp", nil, agg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer gconn.Close()
	for _, p := range ghost.Start(ghostU) {
		if _, err := gconn.Write(p.Marshal()); err != nil {
			t.Fatal(err)
		}
	}

	results := make([][]int32, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			u := make([]int32, d)
			for j := range u {
				u[j] = int32(i + 1)
			}
			c, err := NewClient(ClientConfig{
				Aggregator: agg.Addr().String(),
				Worker: core.WorkerConfig{
					ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
				},
				RTO:     20 * time.Millisecond,
				Timeout: 20 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			results[i], errs[i] = c.AllReduceInt32(u)
		}()
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("survivor %d: %v", i, errs[i])
		}
	}
	if agg.Alive(2) {
		t.Error("ghost worker 2 was not declared failed")
	}
	if !agg.Alive(0) || !agg.Alive(1) {
		t.Error("a survivor was wrongly declared failed")
	}
	if agg.Epoch() == 0 {
		t.Error("job generation was not bumped by recovery")
	}
	// Both survivors converge on the identical tensor: full sums
	// (1+2+3) before the recovery frontier, survivor sums (1+2) after.
	for j := range results[0] {
		if results[0][j] != results[1][j] {
			t.Fatalf("survivors disagree at elem %d: %d vs %d", j, results[0][j], results[1][j])
		}
	}
	boundary := checkBoundary(t, results[0], 6, 3, k)
	if boundary >= d {
		t.Error("no element carries survivor-only sums: recovery never ran")
	}
}

// TestFaultClientBackoffResetOnReceive is the regression test for the
// per-slot backoff reset: any receive that makes the slot progress —
// or shows it idle — must drop the slot back to the base RTO, while a
// receive the state machine ignores must not.
func TestFaultClientBackoffResetOnReceive(t *testing.T) {
	const n, s, k = 2, 2, 4
	// An aggregator nobody talks to, just so the client can dial.
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	c, err := NewClient(ClientConfig{
		Aggregator: agg.Addr().String(),
		Worker: core.WorkerConfig{
			ID: 0, Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	u := make([]int32, 2*k) // two chunks: slots 0 and 1, version 0
	for j := range u {
		u[j] = int32(j)
	}
	c.worker.Start(u)

	// A version-mismatched result is ignored by the state machine; the
	// slot is still pending, so the loss streak is not over.
	c.backoff[0] = 5
	stale := &packet.Packet{Kind: packet.KindResult, Ver: 1, Idx: 0, Off: 0, Vector: make([]int32, k)}
	if _, err := c.handleIncoming(stale); err != nil {
		t.Fatal(err)
	}
	if c.backoff[0] != 5 {
		t.Errorf("ignored result reset backoff: got %d want 5", c.backoff[0])
	}

	// The real result completes the chunk: backoff must reset.
	good := &packet.Packet{Kind: packet.KindResult, Ver: 0, Idx: 0, Off: 0, Vector: make([]int32, k)}
	for j := range good.Vector {
		good.Vector[j] = 2 * int32(j)
	}
	if _, err := c.handleIncoming(good); err != nil {
		t.Fatal(err)
	}
	if c.backoff[0] != 0 {
		t.Errorf("completing result did not reset backoff: got %d want 0", c.backoff[0])
	}

	// A duplicate result for the now-idle slot also resets (the slot
	// has nothing outstanding, so backing off is meaningless).
	c.backoff[0] = 3
	if _, err := c.handleIncoming(good); err != nil {
		t.Fatal(err)
	}
	if c.backoff[0] != 0 {
		t.Errorf("result for idle slot did not reset backoff: got %d want 0", c.backoff[0])
	}
}

// TestFaultUDPHeartbeatKeepsIdleWorkerAlive parks both workers well
// past the silence threshold with only heartbeats flowing; the
// detector must not evict anyone, and a later all-reduce must still
// see full membership.
func TestFaultUDPHeartbeatKeepsIdleWorkerAlive(t *testing.T) {
	const n, s, k, d = 2, 2, 8, 400
	agg, err := NewAggregator(AggregatorConfig{
		Addr: "127.0.0.1:0",
		Switch: core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		},
		Liveness: &LivenessConfig{SilenceAfter: 150 * time.Millisecond, CheckEvery: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	clients := make([]*Client, n)
	for i := range clients {
		c, err := NewClient(ClientConfig{
			Aggregator: agg.Addr().String(),
			Worker: core.WorkerConfig{
				ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
			},
			RTO:       20 * time.Millisecond,
			Timeout:   10 * time.Second,
			Heartbeat: 40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	// Idle for several silence thresholds: only heartbeats flow.
	time.Sleep(500 * time.Millisecond)
	for i := 0; i < n; i++ {
		if !agg.Alive(i) {
			t.Fatalf("idle-but-heartbeating worker %d was evicted", i)
		}
	}
	if agg.Epoch() != 0 {
		t.Fatalf("recovery ran against an idle job: epoch %d", agg.Epoch())
	}

	var wg sync.WaitGroup
	results := make([][]int32, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			u := make([]int32, d)
			for j := range u {
				u[j] = int32(i + 1)
			}
			results[i], errs[i] = clients[i].AllReduceInt32(u)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		for j, v := range results[i] {
			if v != 3 {
				t.Fatalf("worker %d elem %d: got %d want 3", i, j, v)
			}
		}
	}
}
