package transport

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"switchml/internal/core"
	"switchml/internal/packet"
)

// runCluster aggregates one tensor per worker through a local
// aggregator and returns the per-worker results.
func runCluster(t *testing.T, n, s, k int, updates [][]int32, drop func(*packet.Packet) bool) ([][]int32, *Aggregator) {
	t.Helper()
	agg, err := NewAggregator(AggregatorConfig{
		Addr: "127.0.0.1:0",
		Switch: core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		},
		DropResult: drop,
	})
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]int32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewClient(ClientConfig{
				Aggregator: agg.Addr().String(),
				Worker: core.WorkerConfig{
					ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
				},
				RTO:     20 * time.Millisecond,
				Timeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			results[i], errs[i] = c.AllReduceInt32(updates[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return results, agg
}

func TestUDPAllReduce(t *testing.T) {
	const n, d = 4, 5000
	rng := rand.New(rand.NewSource(1))
	updates := make([][]int32, n)
	want := make([]int32, d)
	for i := range updates {
		updates[i] = make([]int32, d)
		for j := range updates[i] {
			updates[i][j] = int32(rng.Intn(1001) - 500)
			want[j] += updates[i][j]
		}
	}
	results, agg := runCluster(t, n, 8, 32, updates, nil)
	defer agg.Close()
	for i, res := range results {
		for j := range want {
			if res[j] != want[j] {
				t.Fatalf("worker %d elem %d: got %d want %d", i, j, res[j], want[j])
			}
		}
	}
}

func TestUDPAllReduceWithResultLoss(t *testing.T) {
	// Drop the first multicast result for every slot offset: workers
	// must recover through timeouts and the shadow-copy unicast path,
	// over real sockets.
	const n, d = 3, 1200
	var mu sync.Mutex
	dropped := map[uint64]bool{}
	drop := func(p *packet.Packet) bool {
		if p.Kind != packet.KindResult {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if !dropped[p.Off] {
			dropped[p.Off] = true
			return true
		}
		return false
	}
	updates := make([][]int32, n)
	want := make([]int32, d)
	for i := range updates {
		updates[i] = make([]int32, d)
		for j := range updates[i] {
			updates[i][j] = int32(i + j)
			want[j] += int32(i + j)
		}
	}
	results, agg := runCluster(t, n, 4, 16, updates, drop)
	defer agg.Close()
	for i, res := range results {
		for j := range want {
			if res[j] != want[j] {
				t.Fatalf("worker %d elem %d: got %d want %d", i, j, res[j], want[j])
			}
		}
	}
	if agg.Stats().ResultRetransmissions == 0 {
		t.Error("expected unicast result retransmissions over UDP")
	}
}

func TestUDPConsecutiveTensors(t *testing.T) {
	const n = 2
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: n, PoolSize: 4, SlotElems: 8, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	var wg sync.WaitGroup
	failed := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewClient(ClientConfig{
				Aggregator: agg.Addr().String(),
				Worker:     core.WorkerConfig{ID: uint16(i), Workers: n, PoolSize: 4, SlotElems: 8, LossRecovery: true},
				RTO:        20 * time.Millisecond,
			})
			if err != nil {
				failed[i] = err
				return
			}
			defer c.Close()
			for iter := 0; iter < 3; iter++ {
				u := make([]int32, 100+iter*37)
				for j := range u {
					u[j] = int32(iter*1000 + j)
				}
				res, err := c.AllReduceInt32(u)
				if err != nil {
					failed[i] = err
					return
				}
				for j := range u {
					if res[j] != 2*u[j] {
						failed[i] = errIter{int32(iter), int32(j), res[j], 2 * u[j]}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range failed {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

type errIter [4]int32

func (e errIter) Error() string { return "iteration value mismatch" }

func TestUDPEmptyTensor(t *testing.T) {
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: 1, PoolSize: 1, SlotElems: 4, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	c, err := NewClient(ClientConfig{
		Aggregator: agg.Addr().String(),
		Worker:     core.WorkerConfig{ID: 0, Workers: 1, PoolSize: 1, SlotElems: 4, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.AllReduceInt32(nil)
	if err != nil || out != nil {
		t.Errorf("empty AllReduce = %v, %v", out, err)
	}
}

func TestUDPValidation(t *testing.T) {
	if _, err := NewAggregator(AggregatorConfig{Addr: "127.0.0.1:0",
		Switch: core.SwitchConfig{}}); err == nil {
		t.Error("bad switch config accepted")
	}
	if _, err := NewAggregator(AggregatorConfig{Addr: "not-an-addr",
		Switch: core.SwitchConfig{Workers: 1, PoolSize: 1, SlotElems: 1}}); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := NewClient(ClientConfig{Aggregator: "127.0.0.1:1",
		Worker: core.WorkerConfig{}}); err == nil {
		t.Error("bad worker config accepted")
	}
	if _, err := NewClient(ClientConfig{Aggregator: "not-an-addr",
		Worker: core.WorkerConfig{Workers: 1, PoolSize: 1, SlotElems: 1}}); err == nil {
		t.Error("bad aggregator address accepted")
	}
}

func TestAggregatorDoubleClose(t *testing.T) {
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: 1, PoolSize: 1, SlotElems: 1, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Close(); err != nil {
		t.Errorf("first close: %v", err)
	}
	if err := agg.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestUDPTimeoutWhenAlone(t *testing.T) {
	// A 2-worker job with only one participant must time out, not
	// hang.
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: 2, PoolSize: 2, SlotElems: 4, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	c, err := NewClient(ClientConfig{
		Aggregator: agg.Addr().String(),
		Worker:     core.WorkerConfig{ID: 0, Workers: 2, PoolSize: 2, SlotElems: 4, LossRecovery: true},
		RTO:        10 * time.Millisecond,
		Timeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AllReduceInt32([]int32{1, 2, 3}); err == nil {
		t.Error("lonely worker did not time out")
	}
	if c.Stats().Retransmissions == 0 {
		t.Error("no retransmissions before timeout")
	}
}

func TestAggregatorResetRestartsJob(t *testing.T) {
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: 2, PoolSize: 4, SlotElems: 8, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	run := func() error {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i := 0; i < 2; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := NewClient(ClientConfig{
					Aggregator: agg.Addr().String(),
					Worker:     core.WorkerConfig{ID: uint16(i), Workers: 2, PoolSize: 4, SlotElems: 8, LossRecovery: true},
					RTO:        20 * time.Millisecond,
					Timeout:    5 * time.Second,
				})
				if err != nil {
					errs[i] = err
					return
				}
				defer c.Close()
				u := make([]int32, 300)
				for j := range u {
					u[j] = int32(j)
				}
				out, err := c.AllReduceInt32(u)
				if err != nil {
					errs[i] = err
					return
				}
				if out[5] != 10 {
					errs[i] = errIter{0, 5, out[5], 10}
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := run(); err != nil {
		t.Fatalf("first job: %v", err)
	}
	// Fresh clients start their stream at offset 0 again: only valid
	// after Reset.
	agg.Reset()
	if err := run(); err != nil {
		t.Fatalf("restarted job: %v", err)
	}
}
