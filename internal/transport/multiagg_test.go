package transport

import (
	"sync"
	"testing"
	"time"

	"switchml/internal/core"
)

func TestMultiAggregatorTwoJobs(t *testing.T) {
	m, err := NewMultiAggregator("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, job := range []uint16{1, 2} {
		if err := m.AdmitJob(core.SwitchConfig{
			Workers: 2, PoolSize: 4, SlotElems: 8, LossRecovery: true, JobID: job,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Jobs()); got != 2 {
		t.Fatalf("Jobs = %d, want 2", got)
	}

	// Both jobs aggregate concurrently through the same socket; job 1
	// sums ones, job 2 sums twos — results must never mix.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for _, job := range []uint16{1, 2} {
		for id := 0; id < 2; id++ {
			job, id := job, id
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := NewClient(ClientConfig{
					Aggregator: m.Addr().String(),
					Worker: core.WorkerConfig{
						ID: uint16(id), Workers: 2, PoolSize: 4, SlotElems: 8,
						LossRecovery: true, JobID: job,
					},
					RTO: 20 * time.Millisecond,
				})
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				u := make([]int32, 500)
				for j := range u {
					u[j] = int32(job)
				}
				out, err := c.AllReduceInt32(u)
				if err != nil {
					errs <- err
					return
				}
				for j, v := range out {
					if v != 2*int32(job) {
						errs <- errIter{int32(job), int32(j), v, 2 * int32(job)}
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMultiAggregatorAdmission(t *testing.T) {
	// A small budget admits one job but not two (the §6 admission
	// mechanism).
	cfg := core.SwitchConfig{Workers: 8, PoolSize: 128, SlotElems: 32, LossRecovery: true}
	one, err := core.NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := one.MemoryBytes() + one.MemoryBytes()/2

	m, err := NewMultiAggregator("127.0.0.1:0", budget)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cfg.JobID = 1
	if err := m.AdmitJob(cfg); err != nil {
		t.Fatalf("first job rejected: %v", err)
	}
	cfg.JobID = 2
	if err := m.AdmitJob(cfg); err == nil {
		t.Fatal("second job admitted beyond the memory budget")
	}
	if err := m.ReleaseJob(1); err != nil {
		t.Fatal(err)
	}
	if err := m.AdmitJob(cfg); err != nil {
		t.Fatalf("job rejected after release: %v", err)
	}
	if m.MemoryBytes() != one.MemoryBytes() {
		t.Errorf("MemoryBytes = %d, want %d", m.MemoryBytes(), one.MemoryBytes())
	}
	if err := m.ReleaseJob(99); err == nil {
		t.Error("releasing unknown job succeeded")
	}
}

func TestMultiAggregatorDuplicateJob(t *testing.T) {
	m, err := NewMultiAggregator("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cfg := core.SwitchConfig{Workers: 1, PoolSize: 1, SlotElems: 1, LossRecovery: true, JobID: 5}
	if err := m.AdmitJob(cfg); err != nil {
		t.Fatal(err)
	}
	if err := m.AdmitJob(cfg); err == nil {
		t.Error("duplicate job admitted")
	}
	if err := m.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
