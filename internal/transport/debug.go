package transport

import (
	"switchml/internal/core"
	"switchml/internal/telemetry"
)

// AggDebugState is the aggregator's deep introspection document,
// served at /debug/state and embedded in flight-recorder incidents.
//
// Every field is assembled from atomics, per-slot-locked reads and
// counter snapshots — never from a.mu — so it is safe to build from
// any goroutine, including inside trace callbacks fired by the
// recovery state machine while it holds a.mu.
type AggDebugState struct {
	Role  string `json:"role"`
	Epoch uint16 `json:"epoch"`
	// Down mirrors the chaos kill switch: the program is "dead" while
	// the socket stays bound.
	Down   bool `json:"down"`
	Shards int  `json:"shards"`
	// Batch is the per-shard burst ceiling (1 = legacy per-packet
	// loop); NetMode names the I/O strategy the shard loops selected
	// ("per-packet", "portable", "mmsg" or "gso").
	Batch   int    `json:"batch"`
	NetMode string `json:"net_mode"`
	// ShardDatagrams[i] is shard i's cumulative drain count; their
	// spread is the shard-balance view.
	ShardDatagrams []uint64 `json:"shard_datagrams"`
	Received       uint64   `json:"datagrams_received"`
	Corrupted      uint64   `json:"datagrams_corrupted"`
	Sent           uint64   `json:"datagrams_sent"`
	// SendErrors counts datagrams whose socket send failed (dropped,
	// surfaced for diagnosis; the protocol's loss recovery repairs
	// them). SendRetries counts transient kernel pushback
	// (ENOBUFS/EAGAIN) absorbed by netio's bounded backoff instead of
	// dropping, summed across the shard socket views.
	SendErrors  uint64 `json:"udp_send_errors"`
	SendRetries uint64 `json:"udp_send_retries"`
	// Adoptions counts warm-standby adoption roll calls this
	// aggregator has committed: jobs it inherited from a dead rung
	// through the KindAdoptJob handshake.
	Adoptions uint64 `json:"adoptions"`
	// BatchOccupancyP50/P99 are quantiles of datagrams drained per
	// receive wakeup, merged across shards (0 on the legacy loop): how
	// full the batch pipeline actually runs.
	BatchOccupancyP50 float64          `json:"batch_occupancy_p50"`
	BatchOccupancyP99 float64          `json:"batch_occupancy_p99"`
	Switch            core.SwitchStats `json:"switch"`
	Pool              core.PoolState   `json:"pool"`
	// Peers are the learned worker addresses ("" while unlearned);
	// Alive the liveness verdicts (all true without a detector).
	Peers []string `json:"peers"`
	Alive []bool   `json:"alive"`
	// Membership is each worker's elastic-membership status:
	// "member", "draining" (graceful leave announced, finishing its
	// in-flight window) or "departed" (outside the job: gracefully
	// left, never admitted, or evicted). Without a failure detector
	// every worker reads "member".
	Membership []string `json:"membership"`
}

// DebugState assembles the aggregator's introspection document.
// withSlots additionally dumps every slot's state (count, offset,
// seen bitmap), the level of detail incident files want.
func (a *Aggregator) DebugState(withSlots bool) AggDebugState {
	st := AggDebugState{
		Role:           "aggregator",
		Epoch:          a.epochNow(),
		Down:           a.down.Load(),
		Shards:         len(a.shardCtrs),
		Batch:          a.cfg.Batch,
		NetMode:        a.netMode,
		ShardDatagrams: make([]uint64, len(a.shardCtrs)),
		Received:       a.recvd.Value(),
		Corrupted:      a.corrupt.Value(),
		Sent:           a.sent.Value(),
		SendErrors:     a.sendErrs.Value(),
		Adoptions:      a.adoptions.Value(),
		Switch:         a.sw.Stats(),
		Pool:           a.sw.PoolState(withSlots),
		Peers:          make([]string, len(a.peers)),
		Alive:          make([]bool, len(a.peers)),
	}
	for i, c := range a.shardCtrs {
		st.ShardDatagrams[i] = c.Value()
	}
	for _, nc := range a.sncs {
		st.SendRetries += nc.SendRetries()
	}
	if occ, ok := a.occupancySnapshot(); ok {
		st.BatchOccupancyP50 = occ.Quantile(0.5)
		st.BatchOccupancyP99 = occ.Quantile(0.99)
	}
	st.Membership = make([]string, len(a.peers))
	for i := range a.peers {
		if ap := a.peers[i].Load(); ap != nil {
			st.Peers[i] = ap.String()
		}
		st.Alive[i] = a.Alive(i)
		switch {
		case a.Departed(i):
			st.Membership[i] = "departed"
		case a.Draining(i):
			st.Membership[i] = "draining"
		default:
			st.Membership[i] = "member"
		}
	}
	return st
}

// occupancySnapshot merges the per-shard batch-occupancy histograms
// into one distribution (the buckets are shared, so counts add).
func (a *Aggregator) occupancySnapshot() (telemetry.HistogramSnapshot, bool) {
	var merged telemetry.HistogramSnapshot
	ok := false
	for _, h := range a.shardOcc {
		if h == nil {
			continue
		}
		s := h.Snapshot()
		if !ok {
			merged = s
			ok = true
			continue
		}
		for i := range s.Counts {
			merged.Counts[i] += s.Counts[i]
		}
		merged.Count += s.Count
		merged.Sum += s.Sum
	}
	return merged, ok
}

// ClientDebugState is one worker's introspection document, served at
// /debug/state. Assembled entirely from atomics and gauges the
// AllReduce goroutine publishes at safe points, so it is valid from
// any goroutine while a collective runs.
type ClientDebugState struct {
	Role   string `json:"role"`
	Worker int    `json:"worker"`
	Epoch  uint16 `json:"epoch"`
	// Degraded reports the health state: false = SWITCH path,
	// true = DEGRADED (host all-reduce mesh).
	Degraded bool `json:"degraded"`
	// SRTTNs/RTONs are the RTT estimator's view (0 before the first
	// clean sample when adaptive RTO is off).
	SRTTNs int64 `json:"srtt_ns"`
	RTONs  int64 `json:"rto_ns"`
	// FrontierOff is the stream offset of contiguous progress;
	// PendingChunks the in-flight count at the last publication point.
	FrontierOff   int64 `json:"frontier_off"`
	PendingChunks int64 `json:"pending_chunks"`
	// Batch/NetMode mirror the aggregator-side fields: the send/recv
	// burst ceiling and the selected I/O strategy.
	Batch      int    `json:"batch"`
	NetMode    string `json:"net_mode"`
	Received   uint64 `json:"datagrams_received"`
	Corrupted  uint64 `json:"datagrams_corrupted"`
	Sent       uint64 `json:"datagrams_sent"`
	SendErrors uint64 `json:"udp_send_errors"`
	// SendRetries counts transient kernel pushback (ENOBUFS/EAGAIN)
	// absorbed by netio's bounded backoff instead of dropping, summed
	// across socket views retired by re-homes.
	SendRetries uint64           `json:"udp_send_retries"`
	Stats       core.WorkerStats `json:"stats"`
	Fallback    FallbackStats    `json:"fallback"`
	// HomeRank is the failover-ladder rung serving the job (0 = the
	// primary aggregator); Failover the ladder counters.
	HomeRank int           `json:"home_rank"`
	Failover FailoverStats `json:"failover"`
}

// DebugState assembles the worker's introspection document.
func (c *Client) DebugState() ClientDebugState {
	return ClientDebugState{
		Role:          "worker",
		Worker:        int(c.cfg.Worker.ID),
		Epoch:         uint16(c.gEpoch.Value()),
		Degraded:      c.Degraded(),
		SRTTNs:        c.gSRTT.Value(),
		RTONs:         c.gRTO.Value(),
		FrontierOff:   c.gFrontier.Value(),
		PendingChunks: c.gPending.Value(),
		Batch:         c.cfg.Batch,
		NetMode:       c.netMode(),
		Received:      c.recvd.Value(),
		Corrupted:     c.corrupt.Value(),
		Sent:          c.sent.Value(),
		SendErrors:    c.sendErrs.Value(),
		SendRetries:   c.sendRetryTotal(),
		Stats:         c.worker.Stats(),
		Fallback:      c.FallbackStats(),
		HomeRank:      c.HomeRank(),
		Failover:      c.FailoverStats(),
	}
}

// netMode names the client's I/O strategy for introspection. It reads
// the atomic view pointer: a re-home may swap the batched view under
// a concurrent monitoring read.
func (c *Client) netMode() string {
	nc := c.ncDbg.Load()
	if nc == nil {
		return "per-packet"
	}
	return nc.Mode().String()
}
