package transport

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"switchml/internal/core"
	"switchml/internal/telemetry"
)

// TestFaultObservabilityChaos hammers the whole observability plane —
// snapshot deltas, the time-series sampler, per-slot/debug state and
// the flight recorder — from background goroutines while the cluster
// goes through a kill → degrade → failback cycle. Run under -race by
// the chaos gate, it proves the monitoring surface can be read at any
// moment: counters stay monotonic, sampled series are never torn
// (timestamps strictly increase), and the fault transitions leave
// schema-valid incident files behind.
func TestFaultObservabilityChaos(t *testing.T) {
	const n, elems = 2, 1500
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	fr := telemetry.NewFlightRecorder(telemetry.FlightConfig{
		Capacity: 1024,
		Dir:      dir,
		Registry: reg,
	})

	agg, err := NewAggregator(AggregatorConfig{
		Addr:    "127.0.0.1:0",
		Switch:  core.SwitchConfig{Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true},
		Metrics: reg,
		Tracer:  fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	// Trigger dumps embed the aggregator's per-slot state; DebugState
	// never takes the recovery lock, so this is safe from any emitter.
	fr.SetState(func() any { return agg.DebugState(true) })

	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		c, err := NewClient(ClientConfig{
			Aggregator: agg.Addr().String(),
			Worker: core.WorkerConfig{
				ID: uint16(i), Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true,
			},
			RTO:         10 * time.Millisecond,
			Timeout:     20 * time.Second,
			AdaptiveRTO: true,
			Fallback:    &FallbackConfig{Probation: 1},
			Metrics:     reg,
			Tracer:      fr,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
	}
	mesh := make([]string, n)
	for i, c := range clients {
		mesh[i] = fmt.Sprintf("127.0.0.1:%d", c.MeshAddr().Port)
	}
	for _, c := range clients {
		if err := c.SetMeshPeers(mesh); err != nil {
			t.Fatal(err)
		}
	}

	smp := telemetry.NewSampler(reg, telemetry.SamplerConfig{Capacity: 4096})
	stop := make(chan struct{})
	var mon sync.WaitGroup
	monErr := make(chan string, 16)
	report := func(format string, args ...any) {
		select {
		case monErr <- fmt.Sprintf(format, args...):
		default:
		}
	}
	// Monitor 1: sampler plus snapshot-delta monotonicity.
	mon.Add(1)
	go func() {
		defer mon.Done()
		prev := reg.Snapshot()
		lastTS := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ts := time.Now().UnixNano()
			if ts <= lastTS {
				ts = lastTS + 1
			}
			lastTS = ts
			smp.Sample(ts)
			cur := reg.Snapshot()
			d := cur.Delta(prev)
			for k, v := range d.Counters {
				// Counters are monotonic, so unsigned deltas that look
				// like wrap-around mean a torn or regressed read.
				if v > 1<<62 {
					report("counter %s regressed (delta %d)", k, v)
				}
			}
			for k, h := range d.Histograms {
				if h.Count > 1<<62 {
					report("histogram %s count regressed", k)
				}
			}
			prev = cur
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Monitor 2: deep debug state from a foreign goroutine.
	mon.Add(1)
	go func() {
		defer mon.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := agg.DebugState(true)
			if st.Role != "aggregator" || len(st.ShardDatagrams) != st.Shards {
				report("bad agg debug state: %+v", st)
			}
			for _, c := range clients {
				cs := c.DebugState()
				if cs.Role != "worker" {
					report("bad client debug state: %+v", cs)
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	lockstep(t, clients, elems, 1)
	agg.SetDown(true)
	lockstep(t, clients, elems, 2) // degrade mid-tensor, finish on mesh
	agg.SetDown(false)
	lockstep(t, clients, elems, 3) // probe
	lockstep(t, clients, elems, 4) // streak 1 ≥ probation 1: failback
	lockstep(t, clients, elems, 5)
	close(stop)
	mon.Wait()
	close(monErr)
	for msg := range monErr {
		t.Error(msg)
	}

	// The health cycle ran on every worker.
	for w, c := range clients {
		st := c.FallbackStats()
		if st.Degrades == 0 || st.Failbacks == 0 {
			t.Errorf("worker %d: degrades/failbacks = %d/%d, want both nonzero", w, st.Degrades, st.Failbacks)
		}
		if c.Degraded() {
			t.Errorf("worker %d still degraded", w)
		}
	}

	// Sampled series are not torn: strictly increasing timestamps on
	// every series the run produced.
	dump := smp.Dump()
	if len(dump) == 0 {
		t.Fatal("sampler recorded nothing")
	}
	for name, sd := range dump {
		for i := 1; i < len(sd.Points); i++ {
			if sd.Points[i].TS <= sd.Points[i-1].TS {
				t.Fatalf("series %s torn at %d: %d after %d", name, i, sd.Points[i].TS, sd.Points[i-1].TS)
			}
		}
	}
	if _, ok := dump["udp_datagrams_received_total{role=\"aggregator\"}:rate"]; !ok {
		t.Error("sampler missing the aggregator datagram rate series")
	}

	// The degrade and failback transitions left incident files; each
	// parses against the schema and carries per-slot state.
	files, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(files) < 2 {
		t.Fatalf("incident files = %v, want at least degrade and failback", files)
	}
	reasons := map[string]bool{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var inc telemetry.Incident
		if err := json.Unmarshal(data, &inc); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if inc.Schema != telemetry.IncidentSchema {
			t.Errorf("%s: schema %q", f, inc.Schema)
		}
		if inc.Metrics == nil || inc.Delta == nil {
			t.Errorf("%s: missing metric sections", f)
		}
		if inc.State == nil {
			t.Errorf("%s: missing deep state", f)
		}
		reasons[inc.Reason] = true
	}
	if !reasons["Degrade"] || !reasons["Failback"] {
		t.Errorf("incident reasons = %v, want Degrade and Failback", reasons)
	}

	// Shard load counters add up to the socket-level total.
	st := agg.DebugState(false)
	var shardSum uint64
	for _, v := range st.ShardDatagrams {
		shardSum += v
	}
	if shardSum != st.Received {
		t.Errorf("shard datagrams sum %d != received %d", shardSum, st.Received)
	}
}
