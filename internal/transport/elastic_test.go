package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"switchml/internal/core"
	"switchml/internal/telemetry"
)

// evCounter is a concurrency-safe tracer that tallies events by type,
// so tests can assert "zero failure detections" after a graceful
// membership change.
type evCounter struct {
	mu     sync.Mutex
	counts map[telemetry.EventType]int
}

func newEvCounter() *evCounter {
	return &evCounter{counts: make(map[telemetry.EventType]int)}
}

func (t *evCounter) Emit(e telemetry.Event) {
	t.mu.Lock()
	t.counts[e.Type]++
	t.mu.Unlock()
}

func (t *evCounter) count(ty telemetry.EventType) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[ty]
}

// stepUpdate builds worker i's deterministic update for a 1-based
// step.
func stepUpdate(i, step, d int) []int32 {
	u := make([]int32, d)
	for j := range u {
		u[j] = int32((i+1)*1000 + step*10 + j%7)
	}
	return u
}

// stepSum is the elementwise sum of stepUpdate over the given member
// set.
func stepSum(members []int, step, d int) []int32 {
	want := make([]int32, d)
	for _, i := range members {
		for j, v := range stepUpdate(i, step, d) {
			want[j] += v
		}
	}
	return want
}

// TestFaultUDPGracefulDrain runs a live cluster through a mid-job
// drain: worker 2 announces a graceful leave after step 4 and stops;
// the survivors keep training. Every step before the drain must carry
// full-membership sums, every step after survivor-only sums — with
// zero failure detections: a drain is not a crash.
func TestFaultUDPGracefulDrain(t *testing.T) {
	const n, s, k, d, steps, drainAfter = 3, 4, 16, 320, 8, 4
	tracer := newEvCounter()
	agg, err := NewAggregator(AggregatorConfig{
		Addr: "127.0.0.1:0",
		Switch: core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		},
		Liveness: &LivenessConfig{SilenceAfter: 500 * time.Millisecond},
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	results := make([][][]int32, n) // results[i][step-1]
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		results[i] = make([][]int32, steps)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewClient(ClientConfig{
				Aggregator: agg.Addr().String(),
				Worker: core.WorkerConfig{
					ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
				},
				RTO:     10 * time.Millisecond,
				Timeout: 20 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			last := steps
			if i == n-1 {
				last = drainAfter
			}
			for step := 1; step <= last; step++ {
				out, err := c.AllReduceInt32(stepUpdate(i, step, d))
				if err != nil {
					errs[i] = fmt.Errorf("step %d: %w", step, err)
					return
				}
				results[i][step-1] = out
			}
			if i == n-1 {
				if err := c.Drain(); err != nil {
					errs[i] = err
					return
				}
				// The membership must actually shrink before a drained
				// worker's AllReduce fails fast.
				if _, err := c.AllReduceInt32(stepUpdate(i, 99, d)); !errors.Is(err, ErrDrained) {
					errs[i] = fmt.Errorf("post-drain all-reduce: got %v, want ErrDrained", err)
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
	}
	full := []int{0, 1, 2}
	surv := []int{0, 1}
	for i := 0; i < n-1; i++ {
		for step := 1; step <= steps; step++ {
			members := full
			if step > drainAfter {
				members = surv
			}
			want := stepSum(members, step, d)
			got := results[i][step-1]
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("worker %d step %d elem %d: got %d want %d (members %v)", i, step, j, got[j], want[j], members)
				}
			}
		}
	}
	// Leaver's own steps match the full membership too.
	for step := 1; step <= drainAfter; step++ {
		want := stepSum(full, step, d)
		got := results[n-1][step-1]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("leaver step %d elem %d: got %d want %d", step, j, got[j], want[j])
			}
		}
	}
	if !agg.Departed(n - 1) {
		t.Error("leaver is not marked departed")
	}
	for i := 0; i < n-1; i++ {
		if !agg.Alive(i) {
			t.Errorf("survivor %d is not alive", i)
		}
	}
	if got := tracer.count(telemetry.EvFailureDetected); got != 0 {
		t.Errorf("graceful drain tripped the failure detector %d times", got)
	}
	if got := tracer.count(telemetry.EvDrainStart); got == 0 {
		t.Error("no drain-start event was traced")
	}
	if got := tracer.count(telemetry.EvWorkerLeave); got == 0 {
		t.Error("no worker-leave event was traced")
	}
}

// TestFaultUDPGracefulJoin starts a 2-worker job in a 3-slot universe
// and admits worker 2 mid-job through the join fence, including the
// model-state transfer over the fallback mesh from a holding
// incumbent. Steps before the join must carry incumbent-only sums;
// from the admission boundary on, every worker — joiner included —
// must see full-membership sums.
func TestFaultUDPGracefulJoin(t *testing.T) {
	const n, s, k, d, steps = 3, 4, 16, 320, 10
	tracer := newEvCounter()
	agg, err := NewAggregator(AggregatorConfig{
		Addr: "127.0.0.1:0",
		Switch: core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		},
		Liveness: &LivenessConfig{SilenceAfter: 600 * time.Millisecond},
		Absent:   []int{2},
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	modelState := []int32{7, -3, 42, 0, 1 << 20, -9}
	clients := make([]*Client, n)
	meshAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		c, err := NewClient(ClientConfig{
			Aggregator: agg.Addr().String(),
			Worker: core.WorkerConfig{
				ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
			},
			RTO:     10 * time.Millisecond,
			Timeout: 20 * time.Second,
			Fallback: &FallbackConfig{
				Listen: "127.0.0.1:0",
				// Keep the silence detector far above the fence hold
				// time so a graceful join never degrades the job.
				SuspectAfter: 5 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		meshAddrs[i] = c.MeshAddr().String()
		if i < n-1 {
			state := modelState
			c.SetStateProvider(func() []int32 { return state })
		}
	}
	for i := 0; i < n; i++ {
		if err := clients[i].SetMeshPeers(meshAddrs); err != nil {
			t.Fatal(err)
		}
	}

	results := make([][][]int32, n)
	errs := make([]error, n)
	joinStepCh := make(chan int, 1)
	var fetched []int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		results[i] = make([][]int32, steps)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := clients[i]
			first := 1
			if i == n-1 {
				// Let the incumbents get a few steps in, then join.
				time.Sleep(100 * time.Millisecond)
				state, err := c.JoinCluster()
				if err != nil {
					errs[i] = err
					joinStepCh <- steps + 1
					return
				}
				fetched = state
				first = int(c.Frontier())/d + 1
				joinStepCh <- first
			}
			for step := first; step <= steps; step++ {
				// Pace the loop so the job is still training when the
				// joiner solicits — the fence can only be driven by
				// workers that keep calling AllReduce.
				time.Sleep(25 * time.Millisecond)
				out, err := c.AllReduceInt32(stepUpdate(i, step, d))
				if err != nil {
					errs[i] = fmt.Errorf("step %d: %w", step, err)
					return
				}
				results[i][step-1] = out
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
	}
	joinStep := <-joinStepCh
	if joinStep < 1 || joinStep > steps {
		t.Fatalf("join landed at step %d, outside the %d-step run", joinStep, steps)
	}
	if len(fetched) != len(modelState) {
		t.Fatalf("state fetch: got %d elements, want %d", len(fetched), len(modelState))
	}
	for j := range modelState {
		if fetched[j] != modelState[j] {
			t.Fatalf("state fetch elem %d: got %d want %d", j, fetched[j], modelState[j])
		}
	}
	incumbents := []int{0, 1}
	full := []int{0, 1, 2}
	for i := 0; i < n; i++ {
		first := 1
		if i == n-1 {
			first = joinStep
		}
		for step := first; step <= steps; step++ {
			members := incumbents
			if step >= joinStep {
				members = full
			}
			want := stepSum(members, step, d)
			got := results[i][step-1]
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("worker %d step %d elem %d: got %d want %d (members %v, join at %d)", i, step, j, got[j], want[j], members, joinStep)
				}
			}
		}
	}
	if !agg.Alive(2) {
		t.Error("joiner is not alive after the join")
	}
	if got := tracer.count(telemetry.EvFailureDetected); got != 0 {
		t.Errorf("graceful join tripped the failure detector %d times", got)
	}
	if got := tracer.count(telemetry.EvWorkerJoin); got == 0 {
		t.Error("no worker-join event was traced")
	}
}
