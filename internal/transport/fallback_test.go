package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"switchml/internal/core"
)

// fallbackCluster binds an aggregator and n fallback-armed clients
// with the mesh wired up, ready for lockstep steps.
func fallbackCluster(t *testing.T, n int, probation int, timeout time.Duration) (*Aggregator, []*Client) {
	t.Helper()
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		c, err := NewClient(ClientConfig{
			Aggregator: agg.Addr().String(),
			Worker: core.WorkerConfig{
				ID: uint16(i), Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true,
			},
			RTO:         10 * time.Millisecond,
			Timeout:     timeout,
			AdaptiveRTO: true,
			Fallback:    &FallbackConfig{Probation: probation},
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
	}
	mesh := make([]string, n)
	for i, c := range clients {
		mesh[i] = fmt.Sprintf("127.0.0.1:%d", c.MeshAddr().Port)
	}
	for _, c := range clients {
		if err := c.SetMeshPeers(mesh); err != nil {
			t.Fatal(err)
		}
	}
	return agg, clients
}

// lockstep runs one collective step across all clients and checks
// every worker got the exact elementwise sum.
func lockstep(t *testing.T, clients []*Client, elems, step int) {
	t.Helper()
	n := len(clients)
	us := make([][]int32, n)
	want := make([]int32, elems)
	for w := range us {
		us[w] = make([]int32, elems)
		for j := range us[w] {
			us[w][j] = int32(step*1000 + w*10 + j%7)
			want[j] += us[w][j]
		}
	}
	results := make([][]int32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := range clients {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w], errs[w] = clients[w].AllReduceInt32(us[w])
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("step %d worker %d: %v", step, w, err)
		}
	}
	for w, res := range results {
		for j := range want {
			if res[j] != want[j] {
				t.Fatalf("step %d worker %d elem %d: got %d want %d", step, w, j, res[j], want[j])
			}
		}
	}
}

// TestFaultUDPAggregatorKillFallbackFailback is the UDP tentpole: the
// aggregation program dies between steps, the workers degrade to mesh
// ring all-reduce and keep producing exact sums, probe the revived
// aggregator through the probation window, and fail back — after
// which the switch path carries traffic again.
func TestFaultUDPAggregatorKillFallbackFailback(t *testing.T) {
	const n, elems = 3, 3000
	agg, clients := fallbackCluster(t, n, 2, 20*time.Second)
	defer agg.Close()

	lockstep(t, clients, elems, 1)
	lockstep(t, clients, elems, 2)
	preKill := agg.Stats().Completions
	if preKill == 0 {
		t.Fatal("no switch completions before the kill")
	}

	agg.SetDown(true)
	lockstep(t, clients, elems, 3) // degrade mid-tensor, finish on mesh
	agg.SetDown(false)
	lockstep(t, clients, elems, 4) // probe 1 sent
	lockstep(t, clients, elems, 5) // streak 1, probe 2
	lockstep(t, clients, elems, 6) // streak 2 ≥ probation: failback, switch path
	lockstep(t, clients, elems, 7)

	for w, c := range clients {
		st := c.FallbackStats()
		if st.Degrades != 1 {
			t.Errorf("worker %d: degrades = %d, want 1", w, st.Degrades)
		}
		if st.Failbacks != 1 {
			t.Errorf("worker %d: failbacks = %d, want 1", w, st.Failbacks)
		}
		if st.HostRounds != 3 {
			t.Errorf("worker %d: host rounds = %d, want 3", w, st.HostRounds)
		}
		if st.HostElems != 3*elems {
			t.Errorf("worker %d: host elems = %d, want %d", w, st.HostElems, 3*elems)
		}
		if st.Probes == 0 || st.ProbeAcks == 0 {
			t.Errorf("worker %d: probes/acks = %d/%d, want both nonzero", w, st.Probes, st.ProbeAcks)
		}
		if c.Degraded() {
			t.Errorf("worker %d still degraded after failback", w)
		}
	}
	if post := agg.Stats().Completions; post <= preKill {
		t.Errorf("no switch completions after failback: %d before, %d after", preKill, post)
	}
	if agg.Epoch() == 0 {
		t.Error("failback did not fence the job under a new generation")
	}
}

// TestFaultUDPDegradedSteadyState pins the job on the mesh (negative
// probation) with the aggregator dead the whole time: the collective
// must keep producing exact sums indefinitely without a switch.
func TestFaultUDPDegradedSteadyState(t *testing.T) {
	const n, elems = 2, 1500
	agg, clients := fallbackCluster(t, n, -1, 20*time.Second)
	defer agg.Close()
	agg.SetDown(true)
	for step := 1; step <= 4; step++ {
		lockstep(t, clients, elems, step)
	}
	for w, c := range clients {
		if !c.Degraded() {
			t.Errorf("worker %d not degraded with the aggregator dead", w)
		}
		if st := c.FallbackStats(); st.HostRounds != 4 {
			t.Errorf("worker %d: host rounds = %d, want 4", w, st.HostRounds)
		}
	}
	if agg.Stats().Completions != 0 {
		t.Error("dead aggregator completed slots")
	}
}

// TestFaultUDPAggregatorProcessDeathFallback kills the aggregator
// outright — socket closed, not merely silent — so on loopback every
// subsequent datagram to it fails with ECONNREFUSED from the kernel's
// ICMP port-unreachable. The refused writes must read as death
// evidence for the silence detector, not as a send error, and the
// collective must finish on the mesh.
func TestFaultUDPAggregatorProcessDeathFallback(t *testing.T) {
	const n, elems = 2, 1500
	agg, clients := fallbackCluster(t, n, -1, 20*time.Second)

	lockstep(t, clients, elems, 1)
	agg.Close() // the process is gone; no revival is coming
	lockstep(t, clients, elems, 2)
	lockstep(t, clients, elems, 3)
	for w, c := range clients {
		if !c.Degraded() {
			t.Errorf("worker %d not degraded with the aggregator gone", w)
		}
		if st := c.FallbackStats(); st.HostRounds < 2 {
			t.Errorf("worker %d: host rounds = %d, want >= 2", w, st.HostRounds)
		}
	}
}

// TestFaultUDPNoFallbackTypedError checks that without a fallback an
// aggregator gone silent mid-tensor surfaces as the typed, retryable
// ErrAggregatorSilent rather than a generic timeout.
func TestFaultUDPNoFallbackTypedError(t *testing.T) {
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: 1, PoolSize: 4, SlotElems: 16, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	agg.SetDown(true)
	c, err := NewClient(ClientConfig{
		Aggregator: agg.Addr().String(),
		Worker:     core.WorkerConfig{ID: 0, Workers: 1, PoolSize: 4, SlotElems: 16, LossRecovery: true},
		RTO:        5 * time.Millisecond,
		Timeout:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	u := make([]int32, 256)
	for i := range u {
		u[i] = int32(i)
	}
	if _, err := c.AllReduceInt32(u); !errors.Is(err, ErrAggregatorSilent) {
		t.Fatalf("AllReduceInt32 error = %v, want ErrAggregatorSilent", err)
	}
}

// TestFaultFallbackStatsRace hammers the monitoring surface —
// Stats, FallbackStats, Degraded — from a background goroutine while
// the collective degrades, runs on the mesh and fails back. Run under
// -race, it proves the health state is safe to observe live.
func TestFaultFallbackStatsRace(t *testing.T) {
	const n, elems = 2, 1000
	agg, clients := fallbackCluster(t, n, 1, 20*time.Second)
	defer agg.Close()

	stop := make(chan struct{})
	var mon sync.WaitGroup
	for _, c := range clients {
		c := c
		mon.Add(1)
		go func() {
			defer mon.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = c.Stats()
					_ = c.FallbackStats()
					_ = c.Degraded()
				}
			}
		}()
	}

	lockstep(t, clients, elems, 1)
	agg.SetDown(true)
	lockstep(t, clients, elems, 2)
	agg.SetDown(false)
	lockstep(t, clients, elems, 3)
	lockstep(t, clients, elems, 4) // streak 1 ≥ probation 1: failback
	lockstep(t, clients, elems, 5)
	close(stop)
	mon.Wait()

	for w, c := range clients {
		if st := c.FallbackStats(); st.Degrades == 0 || st.Failbacks == 0 {
			t.Errorf("worker %d: degrades/failbacks = %d/%d, want both nonzero", w, st.Degrades, st.Failbacks)
		}
	}
}
