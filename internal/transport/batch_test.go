package transport

import (
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchml/internal/core"
	"switchml/internal/netio"
	"switchml/internal/telemetry"
)

// runBatchCluster is runCluster with an explicit I/O burst ceiling on
// both sides (1 = legacy per-packet loops, 0 = the batched default).
func runBatchCluster(t *testing.T, n, d, batch int, seed int64) ([][]int32, []int32, *Aggregator, []*Client) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	updates := make([][]int32, n)
	want := make([]int32, d)
	for i := range updates {
		updates[i] = make([]int32, d)
		for j := range updates[i] {
			updates[i][j] = int32(rng.Intn(1001) - 500)
			want[j] += updates[i][j]
		}
	}
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Shards: 4,
		Batch:  batch,
		Switch: core.SwitchConfig{
			Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]int32, n)
	clients := make([]*Client, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewClient(ClientConfig{
				Aggregator: agg.Addr().String(),
				Batch:      batch,
				Worker: core.WorkerConfig{
					ID: uint16(i), Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true,
				},
				RTO:     20 * time.Millisecond,
				Timeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			clients[i] = c
			results[i], errs[i] = c.AllReduceInt32(updates[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return results, want, agg, clients
}

// TestBatchedUnbatchedEquivalence runs the identical seeded job
// through the legacy per-packet loops (Batch=1) and the batched
// run-to-completion loops (default batch) and demands bit-identical
// aggregates — the guarantee that batching is purely an I/O change.
func TestBatchedUnbatchedEquivalence(t *testing.T) {
	const n, d, seed = 3, 4000, 99
	legacy, want, aggL, clL := runBatchCluster(t, n, d, 1, seed)
	defer aggL.Close()
	for _, c := range clL {
		defer c.Close()
	}
	batched, want2, aggB, clB := runBatchCluster(t, n, d, 0, seed)
	defer aggB.Close()
	for _, c := range clB {
		defer c.Close()
	}
	for j := range want {
		if want[j] != want2[j] {
			t.Fatalf("seeded inputs diverged at %d", j)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if legacy[i][j] != want[j] || batched[i][j] != want[j] {
				t.Fatalf("worker %d elem %d: legacy %d batched %d want %d",
					i, j, legacy[i][j], batched[i][j], want[j])
			}
		}
	}

	// The debug documents must reflect the strategies actually run.
	stL := aggL.DebugState(false)
	if stL.Batch != 1 || stL.NetMode != "per-packet" {
		t.Errorf("legacy agg debug = batch %d mode %q", stL.Batch, stL.NetMode)
	}
	stB := aggB.DebugState(false)
	if stB.Batch != DefaultBatch || stB.NetMode == "per-packet" || stB.NetMode == "" {
		t.Errorf("batched agg debug = batch %d mode %q", stB.Batch, stB.NetMode)
	}
	// Portable-mode bursts are all exactly 1 datagram, which the
	// histogram's linear interpolation reads back as 0.5 — so the gate
	// is "recording", not a floor on the quantile itself.
	if stB.BatchOccupancyP50 <= 0 {
		t.Errorf("batched occupancy p50 = %v, want > 0 (histogram not recording)", stB.BatchOccupancyP50)
	}
	cst := clB[0].DebugState()
	if cst.Batch != DefaultBatch || cst.NetMode == "per-packet" || cst.NetMode == "" {
		t.Errorf("batched client debug = batch %d mode %q", cst.Batch, cst.NetMode)
	}
	if lst := clL[0].DebugState(); lst.NetMode != "per-packet" {
		t.Errorf("legacy client mode = %q, want per-packet", lst.NetMode)
	}
}

// TestShardStageFlushZeroAlloc is the AllocsPerRun gate behind the
// //switchml:hotpath annotations on stageMulticast and flushShard: a
// shard accumulating a burst's multicast results and fanning them out
// to every peer must not touch the heap.
func TestShardStageFlushZeroAlloc(t *testing.T) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	send, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	nc, err := netio.Wrap(send, netio.Config{Batch: 8, MTU: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// The sink is never read: loopback UDP drops on a full receive
	// buffer without erroring the sender, so no draining goroutine
	// (whose own allocations would pollute AllocsPerRun) is needed.
	ap := sink.LocalAddr().(*net.UDPAddr).AddrPort()
	reg := telemetry.NewRegistry()
	a := &Aggregator{
		sent:     reg.Counter("test_sent"),
		sendErrs: reg.Counter("test_send_errors"),
		peers:    make([]atomic.Pointer[netip.AddrPort], 2),
	}
	a.peers[0].Store(&ap)
	a.peers[1].Store(&ap)
	sh := &aggShard{
		nc:    nc,
		wire:  make([]byte, 128),
		block: make([]byte, 0, 8*2048),
	}
	step := func() {
		for k := 0; k < 4; k++ {
			a.stageMulticast(sh)
		}
		a.flushShard(sh)
	}
	step() // warm the staging arena
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Errorf("stage+flush cycle allocates %.2f/op in mode %v, want 0", allocs, nc.Mode())
	}
}

// TestBatchedDebugStateRace hammers the debug documents — including
// the merged occupancy snapshot and the pooled mesh buffer owner —
// while a batched job runs, for the race detector.
func TestBatchedDebugStateRace(t *testing.T) {
	const n, d = 2, 2000
	rng := rand.New(rand.NewSource(5))
	updates := make([][]int32, n)
	for i := range updates {
		updates[i] = make([]int32, d)
		for j := range updates[i] {
			updates[i][j] = int32(rng.Intn(100))
		}
	}
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Shards: 4,
		Switch: core.SwitchConfig{Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := agg.DebugState(true)
				_ = st.BatchOccupancyP99
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewClient(ClientConfig{
				Aggregator: agg.Addr().String(),
				Worker:     core.WorkerConfig{ID: uint16(i), Workers: n, PoolSize: 8, SlotElems: 32, LossRecovery: true},
				RTO:        20 * time.Millisecond,
				Timeout:    10 * time.Second,
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			pollers.Add(1)
			go func() {
				defer pollers.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = c.DebugState()
					}
				}
			}()
			if _, err := c.AllReduceInt32(updates[i]); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollers.Wait()
}
