package transport

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchml/internal/core"
)

// TestConcurrentStats hammers Aggregator.Stats, Registry dumps and
// Client.Stats from monitoring goroutines while an all-reduce is in
// flight. Under -race this pins the satellite guarantee: snapshot
// paths never race with packet handling, because every counter behind
// them is atomic.
func TestConcurrentStats(t *testing.T) {
	const n, s, k = 4, 8, 16
	agg, err := NewAggregator(AggregatorConfig{
		Addr: "127.0.0.1:0",
		Switch: core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i], err = NewClient(ClientConfig{
			Aggregator: agg.Addr().String(),
			Worker: core.WorkerConfig{
				ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
			},
			RTO: 20 * time.Millisecond,
			// The four spinning monitors own most of a single-core
			// host under the race detector, so the all-reduce crawls;
			// the generous deadline keeps this a race test, not a
			// latency test.
			Timeout: 60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer clients[i].Close()
	}

	// Monitoring goroutines poll every snapshot surface continuously
	// until the traffic stops.
	stop := make(chan struct{})
	var mons sync.WaitGroup
	var polls atomic.Uint64
	for g := 0; g < 4; g++ {
		mons.Add(1)
		go func() {
			defer mons.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = agg.Stats()
				var sb strings.Builder
				agg.Registry().WriteText(&sb)
				for _, c := range clients {
					_ = c.Stats()
					_ = c.Registry().Snapshot()
				}
				polls.Add(1)
			}
		}()
	}

	u := make([]int32, 10000)
	for i := range u {
		u[i] = 2
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([][]int32, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = clients[i].AllReduceInt32(u)
		}()
	}
	wg.Wait()
	close(stop)
	mons.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		for j, v := range results[i] {
			if v != int32(2*n) {
				t.Fatalf("worker %d elem %d: got %d, want %d", i, j, v, 2*n)
			}
		}
	}
	if polls.Load() == 0 {
		t.Fatal("monitors never polled")
	}
	// The snapshots the monitors read are the same counters the
	// protocol incremented: the final view must reflect the traffic.
	if st := agg.Stats(); st.Completions == 0 {
		t.Error("aggregator saw no completions")
	}
	if v := agg.Registry().Counter("udp_datagrams_received_total", "role", "aggregator").Value(); v == 0 {
		t.Error("datagram counter never moved")
	}
}

// TestShardedAggregatorConcurrentClients drives back-to-back
// all-reduces from concurrent clients into an aggregator with an
// explicit shard count and the liveness detector on, so that under
// -race the per-slot locking, the atomic peer/epoch/tracker fast
// paths and the sweeper all run against live traffic.
func TestShardedAggregatorConcurrentClients(t *testing.T) {
	const n, s, k = 4, 8, 16
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Shards: 8,
		Switch: core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
		},
		Liveness: &LivenessConfig{
			SilenceAfter: 5 * time.Second,
			CheckEvery:   10 * time.Millisecond, // sweep constantly under traffic
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i], err = NewClient(ClientConfig{
			Aggregator: agg.Addr().String(),
			Worker: core.WorkerConfig{
				ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true,
			},
			RTO:       20 * time.Millisecond,
			Timeout:   10 * time.Second,
			Heartbeat: 5 * time.Millisecond, // hammer the lock-free touch path
		})
		if err != nil {
			t.Fatal(err)
		}
		defer clients[i].Close()
	}

	const tensors = 3
	u := make([]int32, 4096)
	for i := range u {
		u[i] = 3
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rounds := 0; rounds < tensors; rounds++ {
				out, err := clients[i].AllReduceInt32(u)
				if err != nil {
					errs[i] = err
					return
				}
				for j, v := range out {
					if v != 3*n {
						errs[i] = fmt.Errorf("tensor %d elem %d: got %d, want %d", rounds, j, v, 3*n)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if st := agg.Stats(); st.Completions == 0 {
		t.Error("aggregator saw no completions")
	}
	if agg.Epoch() != 0 {
		t.Errorf("liveness detector fired a recovery on a healthy job (epoch %d)", agg.Epoch())
	}
	for i := 0; i < n; i++ {
		if !agg.Alive(i) {
			t.Errorf("worker %d wrongly declared dead", i)
		}
	}
}

// TestMultiAggConcurrentStats does the same for the multi-tenant
// server: JobStats, MemoryBytes, Jobs and the registry dump race-free
// against concurrent jobs from two tenants.
func TestMultiAggConcurrentStats(t *testing.T) {
	const n, s, k = 2, 4, 8
	m, err := NewMultiAggregator("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, job := range []uint16{1, 2} {
		if err := m.AdmitJob(core.SwitchConfig{
			Workers: n, PoolSize: s, SlotElems: k, LossRecovery: true, JobID: job,
		}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var mons sync.WaitGroup
	mons.Add(1)
	go func() {
		defer mons.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, job := range []uint16{1, 2} {
				_, _ = m.JobStats(job)
			}
			_ = m.MemoryBytes()
			_ = m.Jobs()
			var sb strings.Builder
			m.Registry().WriteText(&sb)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 2*n)
	for _, job := range []uint16{1, 2} {
		for i := 0; i < n; i++ {
			job, i := job, i
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := NewClient(ClientConfig{
					Aggregator: m.Addr().String(),
					Worker: core.WorkerConfig{
						ID: uint16(i), Workers: n, PoolSize: s, SlotElems: k,
						LossRecovery: true, JobID: job,
					},
					RTO:     20 * time.Millisecond,
					Timeout: 10 * time.Second,
				})
				if err != nil {
					errCh <- err
					return
				}
				defer c.Close()
				_, err = c.AllReduceInt32(make([]int32, 5000))
				errCh <- err
			}()
		}
	}
	wg.Wait()
	close(stop)
	mons.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st, ok := m.JobStats(1); !ok || st.Completions == 0 {
		t.Error("job 1 saw no completions")
	}
	// Both jobs' counters landed in the shared registry under their
	// own labels.
	snap := m.Registry().Snapshot()
	if snap.Counters[`switch_completions_total{job="1"}`] == 0 ||
		snap.Counters[`switch_completions_total{job="2"}`] == 0 {
		t.Error("per-job completion counters missing from registry")
	}
}
