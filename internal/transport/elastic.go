package transport

import (
	"net/netip"
	"time"

	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// Elastic membership: the aggregator-side half of graceful join and
// leave (the client half lives in elastic_client.go). Both changes
// commit only at a tensor boundary, so no slot ever mixes
// contributions from two memberships:
//
// Join runs a membership fence. The joiner solicits admission with
// KindJoin; the aggregator proposes the next generation by
// broadcasting a KindReconfig with Ver=1 (the elastic marker — Ver=0
// is the §5.6 eviction fence) carrying the future membership.
// Incumbents finish their in-flight tensor, then hold at the boundary
// and confirm with a Ver=1 KindReport carrying the boundary offset;
// collective tensors give every worker the same stream schedule, so
// the confirmed offsets agree. While incumbents hold, the joiner may
// fetch model state from one of them over the fallback mesh
// (KindStateReq/KindStateData). Once the joiner and every live
// incumbent have confirmed, the fence commits: the pool is wiped
// under the proposed generation with the joiner in the membership,
// and KindResume(gen, boundary) releases everyone. A §5.6 recovery
// starting mid-fence aborts the fence (crash recovery cannot wait);
// the joiner simply retries.
//
// Leave needs no hold. The leaver announces KindLeave carrying its
// drain boundary — the stream offset where its participation ends
// (the end of its last tensor) — and is marked draining, which
// excuses its coming silence from the failure detector. Survivors
// roll into the next tensor and stall (the pool still counts the
// leaver), which is the commit signal: once every other live worker
// has demonstrably passed the boundary (an update or fence confirm at
// or beyond it proves everything before it is complete), the leaver
// is retired as departed — not dead — and the standard §5.6
// reconfigure/report/resume handshake restarts the survivors from
// their frontier under the shrunken membership.
type memberFence struct {
	// gen is the proposed job generation (current epoch + 1).
	gen uint16
	// joiner is the worker being admitted.
	joiner int
	// confirmed marks workers holding at the boundary (for the joiner:
	// state fetched, ready to be released).
	confirmed []bool
	// boundary is the maximum offset confirmed by an incumbent — the
	// common tensor boundary everyone resumes from.
	boundary uint64
}

// handleJoin processes a joiner's admission solicitation. Joins are
// serialized: one fence at a time, never during §5.6 recovery and
// never while a leave is draining (the joiner retransmits KindJoin at
// its RTO, so a refused solicitation is simply retried).
func (a *Aggregator) handleJoin(p *packet.Packet, src netip.AddrPort) {
	if a.lv == nil {
		return // membership is static without a failure detector
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	lv := a.lv
	w := int(p.WorkerID)
	a.setPeer(p.WorkerID, src)
	if !lv.tracker.Dead(w) && lv.tracker.LastSeen(w) >= 0 && (lv.fence == nil || lv.fence.joiner != w) {
		// Already a member: the commit's resume directive was lost.
		if lv.resumeReady.Load() {
			out := packet.NewControl(packet.KindResume, p.WorkerID, a.epochNow(), lv.frontier.Load(), nil).Marshal()
			a.writeCtrl(out, src)
		}
		return
	}
	if lv.recovering || lv.leaveArmed.Load() {
		return // recovery and drains first; the joiner retries
	}
	if lv.fence != nil {
		if lv.fence.joiner == w {
			a.sendFenceLocked() // push the directive again
		}
		return
	}
	lv.fence = &memberFence{
		gen:       a.epochNow() + 1,
		joiner:    w,
		confirmed: make([]bool, len(a.peers)),
	}
	a.sendFenceLocked()
}

// handleLeave processes a drain announcement. The announcement is
// always honored (refusing would turn an announced exit into a
// false-positive crash) except when the leaver is the last live
// worker; the ack is the announcement echoed back, which the client
// retransmits until it sees.
func (a *Aggregator) handleLeave(p *packet.Packet, src netip.AddrPort) {
	if a.lv == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	lv := a.lv
	w := int(p.WorkerID)
	switch {
	case lv.tracker.Dead(w) || lv.tracker.Draining(w):
		// Retired or already draining: just ack again.
	case lv.tracker.AliveCount() <= 1:
		return // never drain the last member: no ack, the drain fails
	default:
		lv.tracker.MarkDraining(w)
		lv.leavePend[w] = true
		lv.leaveOff[w] = p.Off
		lv.leaveArmed.Store(true)
		a.traceCtrl(telemetry.EvDrainStart, int32(w), int64(p.Off))
	}
	a.setPeer(p.WorkerID, src)
	ack := packet.NewControl(packet.KindLeave, p.WorkerID, a.epochNow(), p.Off, nil).Marshal()
	a.writeCtrl(ack, src)
}

// sendFenceLocked (re)broadcasts the fence directive — a Ver=1
// KindReconfig carrying the future membership — to every future
// member that has not confirmed yet. Marshalled once, worker id
// patched per peer, like the §5.6 control sends.
func (a *Aggregator) sendFenceLocked() {
	f := a.lv.fence
	var vec []int32
	for w := range a.peers {
		if w == f.joiner || !a.lv.tracker.Dead(w) {
			vec = append(vec, int32(w))
		}
	}
	var wire []byte
	for w := range a.peers {
		if f.confirmed[w] || (w != f.joiner && a.lv.tracker.Dead(w)) {
			continue
		}
		ap := a.peers[w].Load()
		if ap == nil {
			continue
		}
		if wire == nil {
			pk := packet.NewControl(packet.KindReconfig, uint16(w), f.gen, 0, vec)
			pk.Ver = 1
			wire = pk.Marshal()
		} else if err := packet.PatchWorkerID(wire, uint16(w)); err != nil {
			continue
		}
		a.writeCtrl(wire, *ap)
	}
}

// handleFenceReport folds one Ver=1 boundary confirmation into the
// fence. When the joiner and every live incumbent that has ever
// spoken are holding, the fence commits.
func (a *Aggregator) handleFenceReport(p *packet.Packet, src netip.AddrPort) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lv := a.lv
	w := int(p.WorkerID)
	f := lv.fence
	if f == nil {
		// Committed (or aborted) already: a holder resending its
		// confirm missed the release — repeat it under the current
		// generation.
		if p.JobID == a.epochNow() && lv.resumeReady.Load() && !lv.tracker.Dead(w) {
			out := packet.NewControl(packet.KindResume, p.WorkerID, a.epochNow(), lv.frontier.Load(), nil).Marshal()
			a.writeCtrl(out, src)
		}
		return
	}
	if p.JobID != f.gen || (w != f.joiner && lv.tracker.Dead(w)) {
		return
	}
	lv.tracker.Touch(w, time.Now().UnixNano())
	a.setPeer(p.WorkerID, src)
	f.confirmed[w] = true
	if w != f.joiner {
		if p.Off > f.boundary {
			f.boundary = p.Off
		}
		// A confirm at the boundary proves everything before it is
		// complete — it counts toward any pending drain commit, or a
		// holder that stopped sending updates could stall a leave.
		lv.bumpMaxOff(w, p.Off)
	}
	if !f.confirmed[f.joiner] {
		return
	}
	for i := range a.peers {
		if i == f.joiner || lv.tracker.Dead(i) || lv.tracker.LastSeen(i) < 0 {
			continue
		}
		if !f.confirmed[i] {
			return
		}
	}
	a.commitFenceLocked()
}

// commitFenceLocked installs the proposed membership: pool wiped
// under the new generation with the joiner admitted, everyone
// released at the common boundary. resumeReady/frontier take the
// committed values so the standard lost-directive repair paths
// (stale-generation updates, repeated confirms) re-send the release.
func (a *Aggregator) commitFenceLocked() {
	lv := a.lv
	f := lv.fence
	lv.fence = nil
	active := make([]bool, len(a.peers))
	for i := range active {
		active[i] = i == f.joiner || !lv.tracker.Dead(i)
	}
	if err := a.sw.Reconfigure(active, f.gen); err != nil {
		return
	}
	a.epoch.Store(uint32(f.gen))
	lv.tracker.MarkAlive(f.joiner, time.Now().UnixNano())
	lv.recovering = false
	lv.resumeReady.Store(true)
	lv.frontier.Store(f.boundary)
	for i := range lv.reported {
		lv.reported[i] = false
	}
	a.traceCtrl(telemetry.EvWorkerJoin, int32(f.joiner), int64(f.gen))
	a.traceCtrl(telemetry.EvReconfigure, -1, int64(f.gen))
	a.traceCtrl(telemetry.EvResume, -1, int64(f.boundary))
	var wire []byte
	for i := range a.peers {
		if !active[i] {
			continue
		}
		ap := a.peers[i].Load()
		if ap == nil {
			continue
		}
		if wire == nil {
			wire = packet.NewControl(packet.KindResume, uint16(i), f.gen, f.boundary, nil).Marshal()
		} else if err := packet.PatchWorkerID(wire, uint16(i)); err != nil {
			continue
		}
		a.writeCtrl(wire, *ap)
	}
}

// elasticSweepLocked is the sweeper's membership pass: rebroadcast an
// open fence's directive (control datagrams are as losable as any
// other) and commit any drain whose boundary every other live worker
// has passed. The drain commit runs even while a join fence is open —
// a draining leaver will never confirm a fence, so the leave must win
// — and reuses the §5.6 recovery handshake, which aborts the fence as
// a side effect; the joiner retries after the survivors resume.
func (a *Aggregator) elasticSweepLocked() {
	lv := a.lv
	if lv.fence != nil {
		a.sendFenceLocked()
	}
	if !lv.leaveArmed.Load() || lv.recovering {
		return
	}
	committed := false
	for w := range lv.leavePend {
		if !lv.leavePend[w] || !a.drainCommittableLocked(w) {
			continue
		}
		lv.leavePend[w] = false
		lv.tracker.MarkDeparted(w)
		a.traceCtrl(telemetry.EvWorkerLeave, int32(w), int64(lv.leaveOff[w]))
		committed = true
	}
	if !committed {
		return
	}
	pending := false
	for _, p := range lv.leavePend {
		pending = pending || p
	}
	if !pending {
		lv.leaveArmed.Store(false)
	}
	a.startRecoveryLocked()
}

// drainCommittableLocked reports whether leaver w can be retired: at
// least one other live, non-draining worker remains, and every such
// worker has proven progress at or beyond the drain boundary. A
// worker sends an update at offset B only after every prior tensor
// completed for it, so passing the boundary certifies it no longer
// needs the leaver's help with anything the leaver contributed to.
func (a *Aggregator) drainCommittableLocked(w int) bool {
	lv := a.lv
	rest := 0
	for i := range a.peers {
		if i == w || lv.tracker.Dead(i) || lv.tracker.Draining(i) || lv.tracker.LastSeen(i) < 0 {
			continue
		}
		if lv.maxOff[i].Load() < lv.leaveOff[w] {
			return false
		}
		rest++
	}
	return rest > 0
}

// Departed reports whether worker w left gracefully — distinct from
// Alive turning false by eviction, so monitoring can tell a clean
// exit from a crash.
func (a *Aggregator) Departed(w int) bool {
	if a.lv == nil {
		return false
	}
	return a.lv.tracker.Departed(w)
}

// Draining reports whether worker w has announced a graceful leave
// and is finishing its in-flight window.
func (a *Aggregator) Draining(w int) bool {
	if a.lv == nil {
		return false
	}
	return a.lv.tracker.Draining(w)
}
