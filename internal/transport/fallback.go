// Degraded-mode operation for the UDP transport: the client half of
// the self-healing design. When the aggregator goes silent mid-tensor
// every worker detects the outage independently (no progress for
// FallbackConfig.SuspectAfter), agrees with its peers on a chunk-
// aligned handoff frontier, and finishes the tensor — and subsequent
// ones — by ring all-reduce over a direct worker-to-worker UDP mesh.
// While degraded, each round opens with a probe to the aggregator; the
// workers exchange their probe-answer streaks in the round's barrier
// sync, and once the collective minimum reaches the probation
// threshold they all fail back in the same round under a new job
// generation. The generation fence is carried by the probes
// themselves: a probe proposes epoch+1, and an aggregator seeing a
// newer generation wipes its pool before answering, so nothing
// aggregated before the outage can leak into post-failback slots.
//
// The mesh ring is reduce-scatter + all-gather with go-back-N ARQ:
// segments carry a per-round global sequence number, the receiver
// accepts them strictly in order and acks cumulatively, and the sender
// retransmits the window head on timeout or duplicate acks. Unlike
// the simulator's host fabric (which models a reliable kernel
// transport), real UDP loses mesh datagrams too — the ARQ is what
// makes the barrier handoff exact.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"switchml/internal/netio"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// ErrAggregatorSilent is wrapped into errors caused by the aggregator
// (or the network path to it) going quiet — as opposed to bad input or
// a local failure. Callers can errors.Is for it and retry the step
// once the switch path is restored; the tensor was never partially
// aggregated across generations.
var ErrAggregatorSilent = errors.New("transport: aggregator unresponsive")

// errSilence is the internal verdict that flips the client into
// degraded mode mid-tensor. It never escapes AllReduceInt32.
var errSilence = errors.New("transport: silence threshold crossed")

// FallbackConfig enables hitless fallback to host ring all-reduce
// when the aggregator dies, and automatic failback when it returns.
type FallbackConfig struct {
	// Listen is the mesh socket's listen address (e.g. ":7001");
	// empty binds a wildcard ephemeral port, which multi-machine
	// deployments cannot pre-arrange — set it so peers can be listed
	// up front.
	Listen string
	// Peers holds each worker's mesh address, indexed by worker ID
	// (this worker's own entry is ignored). Leave nil and call
	// SetMeshPeers once every worker has bound its mesh socket and
	// published MeshAddr.
	Peers []string
	// SuspectAfter is how long the aggregator may yield no progress
	// mid-tensor before the worker degrades; zero selects 8×RTO. It
	// must exceed a worst-case aggregation pause (all slots in
	// retransmission backoff) or a slow network degrades spuriously —
	// which is safe but slower, since the probe fence forces the whole
	// job through a degraded round.
	SuspectAfter time.Duration
	// Probation is how many consecutive degraded rounds must see their
	// aggregator probe answered before the collective fails back; zero
	// selects 3. Negative pins the job on the mesh forever.
	Probation int
	// SegElems is the mesh datagram payload in elements; zero selects
	// 256 (a 1048-byte datagram, safely under any MTU worth using).
	SegElems int
	// Window is the go-back-N window in segments; zero selects 32.
	Window int
}

func (c *FallbackConfig) fillDefaults(rto time.Duration) {
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 8 * rto
	}
	if c.Probation == 0 {
		c.Probation = 3
	}
	if c.SegElems == 0 {
		c.SegElems = 256
	}
	if c.Window == 0 {
		c.Window = 32
	}
}

// FallbackStats is a snapshot of the degraded-path counters. All
// counters are maintained atomically, so the snapshot is safe to take
// from a monitoring goroutine while AllReduceInt32 runs.
type FallbackStats struct {
	// Degrades counts switch→mesh transitions.
	Degrades uint64
	// Probes / ProbeAcks count aggregator probes sent and answered.
	Probes, ProbeAcks uint64
	// Failbacks counts mesh→switch transitions.
	Failbacks uint64
	// HostRounds / HostElems count tensors (and their elements)
	// aggregated by the mesh ring.
	HostRounds, HostElems uint64
	// MeshRetransmits counts go-back-N retransmissions on the mesh.
	MeshRetransmits uint64
}

// fallback is the client's degraded-mode state. Everything except the
// atomic counters and the degraded flag belongs to the AllReduce
// goroutine.
type fallback struct {
	cfg   FallbackConfig
	mesh  *net.UDPConn
	peers []*net.UDPAddr
	// degraded is atomic only so monitoring goroutines may read it;
	// the AllReduce goroutine is the sole writer.
	degraded atomic.Bool
	// round numbers the degraded collectives; it stamps every mesh
	// datagram so stragglers from a finished round are recognized.
	round uint16
	// prevRecvTotal is the previous round's receive-schedule length,
	// echoed as a "round complete" ack to a stuck stale sender.
	prevRecvTotal int
	// probeSeq/probeAwait/streak implement the probation window:
	// streak counts consecutive rounds whose probe was answered.
	probeSeq   uint32
	probeAwait bool
	streak     int
	// nc is the batched socket view over mesh, staging the ring's
	// window-fill and go-back-N bursts for single-syscall flushes; nil
	// when the client runs legacy per-packet I/O. Only sends go
	// through it — mesh receives stay on the plain socket — so the
	// single-owner staging contract is the AllReduce goroutine's.
	nc *netio.Conn
	// syncWire / prevSyncWire are the marshalled barrier syncs of the
	// current and previous rounds, replayed whenever a peer shows it
	// never received them.
	syncWire, prevSyncWire []byte
	// sbuf/abuf are the mesh send and ack wire buffers.
	sbuf, abuf []byte

	degrades, probes, probeAcks, failbacks atomic.Uint64
	hostRounds, hostElems, meshRetx        atomic.Uint64
}

// MeshAddr returns the bound mesh socket address, or nil when the
// client has no fallback configured. Publish it (with a reachable
// host) to the other workers' SetMeshPeers.
func (c *Client) MeshAddr() *net.UDPAddr {
	if c.fb == nil {
		return nil
	}
	return c.fb.mesh.LocalAddr().(*net.UDPAddr)
}

// SetMeshPeers installs the worker-indexed mesh address table. Call
// it before the first AllReduce (it is not synchronized with one).
func (c *Client) SetMeshPeers(addrs []string) error {
	if c.fb == nil {
		return errors.New("transport: no fallback configured")
	}
	return c.fb.resolvePeers(addrs, int(c.cfg.Worker.ID))
}

func (f *fallback) resolvePeers(addrs []string, self int) error {
	if len(addrs) == 0 {
		return nil
	}
	peers := make([]*net.UDPAddr, len(addrs))
	for i, s := range addrs {
		if i == self || s == "" {
			continue
		}
		a, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return fmt.Errorf("transport: resolve mesh peer %d %q: %w", i, s, err)
		}
		peers[i] = a
	}
	f.peers = peers
	return nil
}

// Degraded reports whether the client is currently running on the
// mesh. Safe for monitoring goroutines.
func (c *Client) Degraded() bool { return c.fb != nil && c.fb.degraded.Load() }

// FallbackStats snapshots the degraded-path counters (zero when no
// fallback is configured). Safe for monitoring goroutines.
func (c *Client) FallbackStats() FallbackStats {
	if c.fb == nil {
		return FallbackStats{}
	}
	f := c.fb
	return FallbackStats{
		Degrades:        f.degrades.Load(),
		Probes:          f.probes.Load(),
		ProbeAcks:       f.probeAcks.Load(),
		Failbacks:       f.failbacks.Load(),
		HostRounds:      f.hostRounds.Load(),
		HostElems:       f.hostElems.Load(),
		MeshRetransmits: f.meshRetx.Load(),
	}
}

// checkPeers verifies the mesh address table covers every peer before
// a degraded collective relies on it.
func (f *fallback) checkPeers(n, self int) error {
	if len(f.peers) < n {
		return fmt.Errorf("transport: degraded with %d of %d mesh peers configured: %w", len(f.peers), n, ErrAggregatorSilent)
	}
	for i := 0; i < n; i++ {
		if i != self && f.peers[i] == nil {
			return fmt.Errorf("transport: degraded without a mesh address for worker %d: %w", i, ErrAggregatorSilent)
		}
	}
	return nil
}

// enterFallback is the mid-tensor degrade: the switch path gave up on
// the current tensor, so agree on the frontier with the peers and
// finish the suffix on the mesh. The client stays degraded for
// subsequent tensors until the probation verdict fails it back.
func (c *Client) enterFallback(u []int32, deadline time.Time) ([]int32, error) {
	fb := c.fb
	n := c.cfg.Worker.Workers
	if err := fb.checkPeers(n, int(c.cfg.Worker.ID)); err != nil {
		return nil, err
	}
	fb.degraded.Store(true)
	fb.streak = 0
	fb.probeAwait = false
	// A pending membership fence dies with the aggregator that
	// proposed it; the joiner re-solicits after failback.
	c.fenceArmed = false
	fb.degrades.Add(1)
	c.gDegraded.Set(1)
	c.trace(telemetry.EvDegrade, -1)
	for i := range c.backoff {
		c.backoff[i] = 0
		c.retxed[i] = false
	}
	frontier := c.worker.FrontierOff()
	F, _, err := c.syncRound(frontier, deadline)
	if err != nil {
		return nil, err
	}
	local := F - c.worker.TensorBase()
	return c.meshFinish(u, F, int(local), deadline)
}

// degradedAllReduce runs one tensor while the job lives on the mesh:
// resolve last round's probe, send this round's, run the barrier sync
// (which also carries the failback vote), then either fail back to the
// switch or aggregate the whole tensor by mesh ring.
func (c *Client) degradedAllReduce(u []int32, deadline time.Time) ([]int32, error) {
	fb := c.fb
	n := c.cfg.Worker.Workers
	if err := fb.checkPeers(n, int(c.cfg.Worker.ID)); err != nil {
		return nil, err
	}
	c.drainProbeAcks()
	c.sendProbe()
	c.worker.StartHosted(u)
	frontier := c.worker.FrontierOff()
	F, minStreak, err := c.syncRound(frontier, deadline)
	if err != nil {
		return nil, err
	}
	if F != frontier {
		return nil, fmt.Errorf("transport: stream misaligned in degraded mode: local frontier %d, collective %d", frontier, F)
	}
	if fb.cfg.Probation >= 0 && minStreak >= fb.cfg.Probation {
		return c.failback(u, deadline)
	}
	return c.meshFinish(u, F, 0, deadline)
}

// meshFinish aggregates the tensor suffix u[local:] (global offset F)
// by mesh ring and installs the result through the barrier-handoff
// write.
func (c *Client) meshFinish(u []int32, F uint64, local int, deadline time.Time) ([]int32, error) {
	fb := c.fb
	buf := make([]int32, len(u)-local)
	copy(buf, u[local:])
	if err := c.meshRound(buf, F, deadline); err != nil {
		return nil, err
	}
	if err := c.worker.InstallHostAggregate(F, buf); err != nil {
		return nil, err
	}
	fb.hostRounds.Add(1)
	fb.hostElems.Add(uint64(len(buf)))
	c.trace(telemetry.EvTensorDone, -1)
	out := make([]int32, len(u))
	copy(out, c.worker.Aggregate())
	return out, nil
}

// failback returns the job to the switch path: the collective verdict
// said every worker's probes have been answered for the probation
// window, so all workers re-open the tensor from chunk zero under the
// generation the probes proposed (which the aggregator already
// adopted, wiping its pool) and drive it with switch packets again.
// If the switch flaps, the silence detector simply degrades again.
func (c *Client) failback(u []int32, deadline time.Time) ([]int32, error) {
	fb := c.fb
	fb.degraded.Store(false)
	fb.streak = 0
	fb.probeAwait = false
	fb.failbacks.Add(1)
	c.gDegraded.Set(0)
	newEpoch := c.epoch + 1
	pkts := c.worker.Resume(newEpoch, 0)
	c.epoch = newEpoch
	c.gEpoch.Set(int64(newEpoch))
	c.trace(telemetry.EvFailback, -1)
	// The progress clock last ticked before the outage; restart it or
	// the silence detector would re-degrade before the first result.
	c.lastProgress = time.Now()
	for i := range c.backoff {
		c.backoff[i] = 0
		c.retxed[i] = false
	}
	for _, p := range pkts {
		err := c.send(p, false)
		packet.PutPacket(p)
		if err != nil {
			return nil, err
		}
	}
	out, err := c.switchLoop(u, deadline)
	if errors.Is(err, errSilence) {
		// Flapped again: walk the whole ladder before settling back on
		// the mesh.
		return c.degradeLadder(u, deadline)
	}
	return out, err
}

// sendProbe asks the aggregator whether it is back, proposing the
// post-failback generation. Probes ride the main connection; loss is
// absorbed by the probation streak (an unanswered probe resets it).
func (c *Client) sendProbe() {
	fb := c.fb
	fb.probeSeq++
	fb.probeAwait = true
	p := packet.NewControl(packet.KindProbe, c.cfg.Worker.ID, c.epoch+1, 0, nil)
	p.Idx = fb.probeSeq
	c.cbuf = p.AppendMarshal(c.cbuf[:0])
	if _, err := c.conn.Write(c.cbuf); err == nil {
		c.sent.Inc()
	}
	fb.probes.Add(1)
	c.trace(telemetry.EvProbe, int32(fb.probeSeq))
}

// drainProbeAcks empties the main connection, resolving the previous
// round's probe. Anything else that piled up while the job lived on
// the mesh (stale results, recovery directives from the old
// generation) is discarded — the probe fence makes it meaningless.
func (c *Client) drainProbeAcks() {
	fb := c.fb
	// A short real deadline, not an expired one: Go fails reads on an
	// already-passed deadline without delivering buffered datagrams, so
	// a zero-length poll would never see the queued ack.
	c.conn.SetReadDeadline(time.Now().Add(c.cfg.RTO / 8))
	for {
		n, err := c.conn.Read(c.rbuf)
		if err != nil {
			break
		}
		c.recvd.Inc()
		if packet.UnmarshalInto(&c.rp, c.rbuf[:n]) != nil {
			c.corrupt.Inc()
			continue
		}
		if c.rp.Kind == packet.KindProbeAck && fb.probeAwait && c.rp.Idx == fb.probeSeq {
			fb.probeAwait = false
			fb.streak++
			fb.probeAcks.Add(1)
			c.trace(telemetry.EvProbeAck, int32(c.rp.Idx))
		}
	}
	if fb.probeAwait {
		// Last round's probe went unanswered: the switch is still gone
		// (or flapping); either way the probation clock restarts.
		fb.probeAwait = false
		fb.streak = 0
	}
}

// syncRound is the degraded path's barrier: every worker broadcasts
// its frontier and probe streak for this round and collects all n-1
// peers' syncs, retransmitting its own until then. All workers see
// the same n values, so the frontier minimum (the handoff boundary)
// and the streak minimum (the failback vote) are collective verdicts
// with no extra agreement round.
func (c *Client) syncRound(frontier uint64, deadline time.Time) (F uint64, minStreak int, err error) {
	fb := c.fb
	n := c.cfg.Worker.Workers
	self := int(c.cfg.Worker.ID)
	fb.round++
	streak := fb.streak
	if streak > 255 {
		streak = 255
	}
	p := packet.NewControl(packet.KindFallbackSync, c.cfg.Worker.ID, fb.round, frontier, nil)
	p.Ver = uint8(streak)
	fb.prevSyncWire = append(fb.prevSyncWire[:0], fb.syncWire...)
	fb.syncWire = p.AppendMarshal(fb.syncWire[:0])

	F, minStreak = frontier, streak
	got := make([]bool, n)
	got[self] = true
	remaining := n - 1
	for w := range got {
		if w != self {
			c.meshWrite(fb.syncWire, fb.peers[w])
		}
	}
	lastTx := time.Now()
	for remaining > 0 {
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("transport: fallback barrier timed out with %d of %d peers silent: %w", remaining, n-1, ErrAggregatorSilent)
		}
		rd := lastTx.Add(c.cfg.RTO)
		if rd.After(deadline) {
			rd = deadline
		}
		fb.mesh.SetReadDeadline(rd)
		nb, _, rerr := fb.mesh.ReadFromUDP(c.rbuf)
		if rerr != nil {
			if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
				for w := range got {
					if !got[w] {
						c.meshWrite(fb.syncWire, fb.peers[w])
					}
				}
				lastTx = time.Now()
				continue
			}
			return 0, 0, rerr
		}
		if packet.UnmarshalInto(&c.rp, c.rbuf[:nb]) != nil {
			continue
		}
		rp := &c.rp
		//switchml:dispatch
		switch rp.Kind {
		case packet.KindFallbackSync:
			w := int(rp.WorkerID)
			if w >= n || w == self {
				continue
			}
			switch int16(rp.JobID - fb.round) {
			case 0:
				if !got[w] {
					got[w] = true
					remaining--
					if rp.Off < F {
						F = rp.Off
					}
					if int(rp.Ver) < minStreak {
						minStreak = int(rp.Ver)
					}
				} else {
					// A repeated sync means the peer never saw ours.
					c.meshWrite(fb.syncWire, fb.peers[w])
				}
			case -1:
				// The peer is still finishing the previous round's
				// barrier and is missing our sync from back then.
				if len(fb.prevSyncWire) > 0 {
					c.meshWrite(fb.prevSyncWire, fb.peers[w])
				}
			}
		case packet.KindFallbackData:
			// Our ring predecessor finished the barrier already and
			// started streaming. Current-round data is dropped (its ARQ
			// re-sends once we join the ring); a stale round's straggler
			// gets the round-complete ack that frees it.
			if int16(rp.JobID-fb.round) < 0 {
				c.sendMeshAck(rp.JobID, fb.prevRecvTotal, int(rp.WorkerID))
			}
		default:
			// Stale or foreign traffic on the mesh socket; count the
			// drop so a confused peer is visible.
			c.unexpected.Inc()
		}
	}
	return F, minStreak, nil
}

// ringPlan precomputes one worker's mesh-ring schedule: which chunk
// is sent and received at each of the 2(n-1) steps, and the global
// segment sequence numbering on each side. Chunk boundaries are
// c*L/n, so the tables are identical arithmetic on every worker and
// the receive-side numbering matches the predecessor's send-side
// numbering exactly.
type ringPlan struct {
	n, L, segElems       int
	F                    uint64
	G                    int
	sendStart, recvStart []int // length G+1; [g] is step g's first seq
	sendChunk, recvChunk []int
}

func newRingPlan(n, rank, L, segElems int, F uint64) *ringPlan {
	G := 2 * (n - 1)
	pl := &ringPlan{
		n: n, L: L, segElems: segElems, F: F, G: G,
		sendStart: make([]int, G+1), recvStart: make([]int, G+1),
		sendChunk: make([]int, G), recvChunk: make([]int, G),
	}
	mod := func(x int) int { return ((x % n) + n) % n }
	for g := 0; g < G; g++ {
		if g < n-1 {
			pl.sendChunk[g] = mod(rank - g)
			pl.recvChunk[g] = mod(rank - g - 1)
		} else {
			j := g - (n - 1)
			pl.sendChunk[g] = mod(rank + 1 - j)
			pl.recvChunk[g] = mod(rank - j)
		}
		pl.sendStart[g+1] = pl.sendStart[g] + pl.segs(pl.sendChunk[g])
		pl.recvStart[g+1] = pl.recvStart[g] + pl.segs(pl.recvChunk[g])
	}
	return pl
}

func (pl *ringPlan) bound(c int) int    { return c * pl.L / pl.n }
func (pl *ringPlan) chunkLen(c int) int { return pl.bound(c+1) - pl.bound(c) }
func (pl *ringPlan) segs(c int) int {
	return (pl.chunkLen(c) + pl.segElems - 1) / pl.segElems
}

// stepOf returns the step a sequence number belongs to. G is tiny
// (2(n-1)), so a linear scan beats anything clever.
func stepOf(starts []int, seq int) int {
	g := 0
	for g+1 < len(starts)-1 && seq >= starts[g+1] {
		g++
	}
	return g
}

// segSpan returns a segment's element range within its chunk-relative
// schedule: buffer offset and length.
func (pl *ringPlan) segSpan(starts, chunks []int, seq int) (g, off, length int) {
	g = stepOf(starts, seq)
	c := chunks[g]
	seg := seq - starts[g]
	off = pl.bound(c) + seg*pl.segElems
	length = pl.chunkLen(c) - seg*pl.segElems
	if length > pl.segElems {
		length = pl.segElems
	}
	return g, off, length
}

// meshRound runs the ring all-reduce over buf (global offset F),
// leaving the full sum in buf on every worker. Reduce-scatter adds,
// all-gather overwrites; a segment is applied exactly once because
// the receiver only accepts the next expected sequence number.
func (c *Client) meshRound(buf []int32, F uint64, deadline time.Time) error {
	fb := c.fb
	n := c.cfg.Worker.Workers
	rank := int(c.cfg.Worker.ID)
	if n == 1 || len(buf) == 0 {
		fb.prevRecvTotal = 0
		return nil
	}
	pl := newRingPlan(n, rank, len(buf), fb.cfg.SegElems, F)
	nextID := (rank + 1) % n
	prevID := (rank + n - 1) % n
	totalSend := pl.sendStart[pl.G]
	totalRecv := pl.recvStart[pl.G]
	cumAck, nextSend, recvSeq := 0, 0, 0
	dupAcks := 0
	lastTx := time.Now()
	for cumAck < totalSend || recvSeq < totalRecv {
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: mesh ring timed out (%d/%d sent-acked, %d/%d received): %w",
				cumAck, totalSend, recvSeq, totalRecv, ErrAggregatorSilent)
		}
		for nextSend < totalSend && nextSend-cumAck < fb.cfg.Window && recvSeq >= pl.recvStart[stepOf(pl.sendStart, nextSend)] {
			c.sendSeg(pl, buf, nextSend, nextID)
			nextSend++
			lastTx = time.Now()
		}
		c.flushMesh()
		rd := lastTx.Add(c.cfg.RTO)
		if rd.After(deadline) {
			rd = deadline
		}
		fb.mesh.SetReadDeadline(rd)
		nb, _, rerr := fb.mesh.ReadFromUDP(c.rbuf)
		if rerr != nil {
			if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
				if cumAck < nextSend {
					// Go-back-N: replay from the ack point (capped, to
					// keep a long outage from bursting).
					end := nextSend
					if end > cumAck+16 {
						end = cumAck + 16
					}
					for s := cumAck; s < end; s++ {
						c.sendSeg(pl, buf, s, nextID)
						fb.meshRetx.Add(1)
					}
					c.flushMesh()
				}
				lastTx = time.Now()
				continue
			}
			return rerr
		}
		if packet.UnmarshalInto(&c.rp, c.rbuf[:nb]) != nil {
			continue
		}
		rp := &c.rp
		//switchml:dispatch
		switch rp.Kind {
		case packet.KindFallbackData:
			if rp.JobID != fb.round {
				if int16(rp.JobID-fb.round) < 0 {
					c.sendMeshAck(rp.JobID, fb.prevRecvTotal, int(rp.WorkerID))
				}
				continue
			}
			if int(rp.Idx) == recvSeq {
				g, off, length := pl.segSpan(pl.recvStart, pl.recvChunk, recvSeq)
				if len(rp.Vector) != length || rp.Off != F+uint64(off) {
					return fmt.Errorf("transport: mesh segment %d malformed: off %d len %d, want %d len %d",
						recvSeq, rp.Off, len(rp.Vector), F+uint64(off), length)
				}
				if g < n-1 {
					for i, v := range rp.Vector {
						buf[off+i] += v
					}
				} else {
					copy(buf[off:off+length], rp.Vector)
				}
				recvSeq++
			}
			// Ack cumulatively — also for out-of-order data, where the
			// repeated ack doubles as a NACK.
			c.sendMeshAck(fb.round, recvSeq, prevID)
		case packet.KindFallbackAck:
			if rp.JobID != fb.round {
				continue
			}
			k := int(rp.Idx)
			switch {
			case k > cumAck:
				if k > nextSend {
					k = nextSend
				}
				cumAck = k
				dupAcks = 0
			case k == cumAck && cumAck < nextSend:
				dupAcks++
				if dupAcks >= 2 {
					c.sendSeg(pl, buf, cumAck, nextID)
					fb.meshRetx.Add(1)
					dupAcks = 0
					lastTx = time.Now()
				}
			}
		case packet.KindFallbackSync:
			// A peer stuck in this round's barrier never got our sync.
			if rp.JobID == fb.round && int(rp.WorkerID) < n && int(rp.WorkerID) != rank {
				c.meshWrite(fb.syncWire, fb.peers[rp.WorkerID])
			}
		default:
			// Stale or foreign traffic on the mesh socket; count the
			// drop so a confused peer is visible.
			c.unexpected.Inc()
		}
	}
	fb.prevRecvTotal = totalRecv
	return nil
}

// sendSeg transmits one ring segment to the next rank. The packet's
// vector aliases buf — safe, because marshalling copies it out before
// the call returns.
func (c *Client) sendSeg(pl *ringPlan, buf []int32, seq, nextID int) {
	fb := c.fb
	_, off, length := pl.segSpan(pl.sendStart, pl.sendChunk, seq)
	p := packet.Packet{
		Kind:     packet.KindFallbackData,
		WorkerID: c.cfg.Worker.ID,
		JobID:    fb.round,
		Idx:      uint32(seq),
		Off:      pl.F + uint64(off),
		Vector:   buf[off : off+length],
	}
	fb.sbuf = p.AppendMarshal(fb.sbuf[:0])
	if fb.nc != nil {
		// Staged: AppendTo copies, so sbuf is immediately reusable. The
		// window pump flushes the whole burst in one batched send.
		fb.nc.AppendTo(fb.sbuf, fb.peers[nextID].AddrPort())
		return
	}
	c.meshWrite(fb.sbuf, fb.peers[nextID])
}

// flushMesh pushes any mesh datagrams staged by the window pump to
// the kernel. A no-op on the legacy per-packet path.
func (c *Client) flushMesh() {
	if c.fb.nc != nil {
		c.fb.nc.Flush()
	}
}

// meshWrite sends one datagram on the mesh socket, counting (not
// retrying) failures: the ring's go-back-N recovery owns repair.
func (c *Client) meshWrite(wire []byte, to *net.UDPAddr) {
	if _, err := c.fb.mesh.WriteToUDP(wire, to); err != nil {
		c.sendErrs.Inc()
	}
}

// sendMeshAck reports the cumulative receive progress of a round to
// its sender.
func (c *Client) sendMeshAck(round uint16, cum, peerID int) {
	fb := c.fb
	if peerID < 0 || peerID >= len(fb.peers) || fb.peers[peerID] == nil {
		return
	}
	p := packet.NewControl(packet.KindFallbackAck, c.cfg.Worker.ID, round, 0, nil)
	p.Idx = uint32(cum)
	fb.abuf = p.AppendMarshal(fb.abuf[:0])
	c.meshWrite(fb.abuf, fb.peers[peerID])
}
