// Warm-standby failover: the middle rung of the three-tier defense
// ladder (primary switch → warm-standby switch → host mesh) for the
// UDP transport. The paper's §5.6 answer to a dead switch is to remap
// the job onto a different switch; this file is that remapping for
// the software aggregator, with the PR 5 host mesh demoted from "the"
// fallback to the rung of last resort.
//
// The client half: ClientConfig.Standbys ranks backup aggregators
// behind the primary. When the silence detector trips, the worker
// walks the ladder — re-dialing the next rung and running the
// KindAdoptJob handshake: it proposes the bumped job generation with
// its chunk frontier, and the rung echoes the request (Ver=1) while
// it collects the same roll call from every other member, all of
// whom detect the same outage on their own silence clocks. The rung
// commits once the roll call is complete — pool wiped under the
// proposed generation, membership inherited — and releases everyone
// with KindResume at the minimum adopted frontier, exactly the §5.6
// reconfigure/report/resume shape with the roll call standing in for
// the report quorum. Only when every rung is silent does the job drop
// to the host mesh (fallback.go), and while it lives on a standby a
// per-tensor probe of the primary runs the same probation window the
// mesh uses, so the job climbs back to rank 0 once the primary has
// answered probes for Probation consecutive tensors.
//
// The aggregator half is the adoption roll call. A standby comes up
// cold: empty pool, no peers, the same worker universe. Adoption
// requests are collected under the control mutex; the commit reuses
// the probe fence's pool wipe (Reconfigure under the proposed
// generation) so nothing aggregated before the outage can leak into
// post-failover slots, and arms the stale-generation repair path so a
// lost release is re-sent. A worker whose climb raced a flapping
// primary simply falls back down the ladder — the handshake is
// idempotent and generation-fenced at every step.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"time"

	"switchml/internal/netio"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// FailoverStats is a snapshot of the ladder counters. All counters
// are registry-backed atomics, so the snapshot is safe to take from a
// monitoring goroutine while AllReduceInt32 runs.
type FailoverStats struct {
	// Rehomes counts re-dials of the main aggregator connection to a
	// different ladder rung (descents and climbs alike).
	Rehomes uint64
	// AdoptRequests counts KindAdoptJob solicitations sent.
	AdoptRequests uint64
	// Probes / ProbeAcks count fail-up probes of the primary sent and
	// answered while the job lives on a standby.
	Probes, ProbeAcks uint64
	// Failbacks counts successful climbs back to the primary (rank 0).
	Failbacks uint64
}

// FailoverStats snapshots the ladder counters (all zero when no
// standbys are configured). Safe for monitoring goroutines.
func (c *Client) FailoverStats() FailoverStats {
	return FailoverStats{
		Rehomes:       c.failRehomes.Value(),
		AdoptRequests: c.failAdopts.Value(),
		Probes:        c.failProbes.Value(),
		ProbeAcks:     c.failProbeAcks.Value(),
		Failbacks:     c.failFailbacks.Value(),
	}
}

// HomeRank reports the ladder rung currently serving the job: 0 is
// the primary aggregator, higher ranks are standbys in Standbys
// order. Safe for monitoring goroutines (it reads the published
// gauge, not the AllReduce goroutine's state).
func (c *Client) HomeRank() int { return int(c.gHome.Value()) }

// jitterSeed derives the deterministic per-worker seed for control-
// timer jitter: the configured seed when set, spread by worker id
// either way so a fleet sharing one config is decorrelated by
// default. stream separates independent consumers (the AllReduce
// goroutine and the heartbeat goroutine must not share a rand.Rand).
func jitterSeed(cfg *ClientConfig, stream int64) int64 {
	base := cfg.JitterSeed
	if base == 0 {
		base = 0x5317c4a1
	}
	return base + int64(cfg.Worker.ID)*2654435761 + stream
}

// jitterDur spreads d by ±10% from the seeded stream, so a fleet of
// workers does not synchronize its heartbeats, probes and adoption
// retransmissions into a stampede against a recovering aggregator.
func jitterDur(rng *rand.Rand, d time.Duration) time.Duration {
	if rng == nil || d <= 0 {
		return d
	}
	return d + time.Duration((rng.Float64()-0.5)*0.2*float64(d))
}

// wrapMain (re)builds the batched socket view over the main
// aggregator connection; called at construction and again by every
// re-home (the netio arenas are bound to one socket). The send
// retries of a retired view are folded into retiredRetries so the
// introspection total survives the swap.
func (c *Client) wrapMain(conn *net.UDPConn) {
	if old := c.nc; old != nil {
		c.retiredRetries.Add(old.SendRetries())
	}
	c.nc = nil
	c.ncDbg.Store(nil)
	c.txb = nil
	c.txSeg = 0
	c.stageErr = nil
	if c.cfg.Batch <= 1 {
		return
	}
	mtu := aggWireMTU(c.cfg.Worker.SlotElems)
	nc, err := netio.Wrap(conn, netio.Config{
		Batch:    c.cfg.Batch,
		MTU:      mtu,
		BusyPoll: c.cfg.BusyPoll,
		OnSendError: func(err error, n int) {
			c.sendErrs.Add(uint64(n))
			if c.stageErr == nil {
				c.stageErr = err
			}
		},
	})
	if err != nil {
		// A socket that cannot expose its fd leaves the legacy
		// per-packet path in place, as at construction.
		return
	}
	c.nc = nc
	c.ncDbg.Store(nc)
	c.txb = make([]byte, 0, c.cfg.Batch*mtu)
}

// sendRetryTotal sums transient-send retries across the current and
// retired batched views. Safe for monitoring goroutines.
func (c *Client) sendRetryTotal() uint64 {
	total := c.retiredRetries.Load()
	if nc := c.ncDbg.Load(); nc != nil {
		total += nc.SendRetries()
	}
	return total
}

// rehome re-dials the main aggregator connection to ladder rung rank
// and rebinds the batched I/O view. The heartbeat goroutine follows
// through the atomic connection pointer; a beacon written to the
// closed previous socket is harmless (its error is ignored and the
// next tick lands on the new rung).
func (c *Client) rehome(rank int) error {
	if rank == c.homeRank {
		return nil
	}
	conn, err := net.DialUDP("udp", nil, c.ladder[rank])
	if err != nil {
		return fmt.Errorf("transport: dial ladder rung %d: %w", rank, err)
	}
	old := c.conn
	c.conn = conn
	c.hbConn.Store(conn)
	c.wrapMain(conn)
	old.Close()
	c.homeRank = rank
	c.gHome.Set(int64(rank))
	c.failRehomes.Inc()
	if c.cfg.Tracer != nil {
		e := telemetry.Ev(telemetry.EvRehome, telemetry.WallClock())
		e.Actor = c.actor
		e.Worker = int32(c.cfg.Worker.ID)
		e.Slot = int32(rank)
		e.Off = int64(c.worker.FrontierOff())
		c.cfg.Tracer.Emit(e)
	}
	return nil
}

// adoptAt re-homes to ladder rung rank and runs the adoption
// handshake to completion: KindAdoptJob (proposing the bumped
// generation with this worker's chunk frontier) is retransmitted at a
// jittered RTO until the rung's KindResume releases the job at the
// collective minimum frontier. A rung that never even echoes the
// request within ackPatience is written off quickly; once the echo
// proves the roll call is open, the wait stretches to commitPatience
// so members whose own silence clocks have not yet expired can
// arrive. Both verdicts come back wrapped in ErrAggregatorSilent so
// the caller can try the next rung.
func (c *Client) adoptAt(rank int, deadline time.Time) error {
	if err := c.rehome(rank); err != nil {
		return err
	}
	prop := c.epoch + 1
	frontier := c.worker.FrontierOff()
	req := packet.NewControl(packet.KindAdoptJob, c.cfg.Worker.ID, prop, frontier, nil)
	ackPatience := 8 * c.cfg.RTO
	// Two silence windows cover the straggling detector (a member that
	// was between tensors notices the outage one full SuspectAfter
	// later than the rest), plus handshake round trips.
	commitPatience := 2*c.silenceAfter() + 8*c.cfg.RTO
	started := time.Now()
	acked := false
	var lastTx time.Time
	for {
		select {
		case <-c.closed:
			return net.ErrClosed
		default:
		}
		now := time.Now()
		if now.After(deadline) {
			return fmt.Errorf("transport: adoption at ladder rung %d timed out: %w", rank, ErrAggregatorSilent)
		}
		if wait := now.Sub(started); (!acked && wait >= ackPatience) || wait >= commitPatience {
			return fmt.Errorf("transport: ladder rung %d silent through the adoption handshake (echoed=%v): %w", rank, acked, ErrAggregatorSilent)
		}
		if now.Sub(lastTx) >= jitterDur(c.frng, c.cfg.RTO) {
			c.cbuf = req.AppendMarshal(c.cbuf[:0])
			if _, err := c.conn.Write(c.cbuf); err == nil {
				c.sent.Inc()
			}
			c.failAdopts.Inc()
			lastTx = now
		}
		if err := c.conn.SetReadDeadline(now.Add(c.cfg.RTO / 2)); err != nil {
			return err
		}
		n, err := c.conn.Read(c.rbuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			if deadDestination(err) {
				// The rung's port is provably closed; fail it without
				// waiting out the patience window.
				return fmt.Errorf("transport: ladder rung %d unreachable: %w", rank, ErrAggregatorSilent)
			}
			return err
		}
		c.recvd.Inc()
		if packet.UnmarshalInto(&c.rp, c.rbuf[:n]) != nil {
			c.corrupt.Inc()
			continue
		}
		p := &c.rp
		//switchml:dispatch
		switch p.Kind {
		case packet.KindAdoptJob:
			// The Ver=1 echo: the rung is alive and collecting the roll
			// call; hold for the rest of the membership.
			if p.Ver == 1 {
				acked = true
			}
		case packet.KindResume:
			if p.JobID == c.epoch {
				continue // stale directive for an already-adopted generation
			}
			pkts, rerr := c.worker.ResumeAt(p.JobID, p.Off)
			if rerr != nil {
				return fmt.Errorf("transport: adoption resume at %d: %w", p.Off, rerr)
			}
			c.adoptEpoch(p.JobID)
			c.lastProgress = time.Now()
			c.trace(telemetry.EvResume, -1)
			for _, q := range pkts {
				serr := c.send(q, false)
				packet.PutPacket(q)
				if serr != nil {
					return serr
				}
			}
			return c.flushTx()
		case packet.KindReconfig:
			// A liveness-equipped rung running its own §5.6 pass mid-
			// adoption: answer the Ver=0 directive with our frontier so
			// its quorum can close (the resume it ends with releases us
			// above). Ver=1 membership fences are ignored — an adoption
			// supersedes any fence the dead rung had proposed.
			if p.Ver == 0 {
				if err := c.sendControl(packet.KindReport, p.JobID, frontier, nil); err != nil {
					return err
				}
			}
		default:
			// Stale results from the previous rung cannot arrive on the
			// fresh socket; anything else is a confused peer.
			c.unexpected.Inc()
		}
	}
}

// degradeLadder is the silence verdict's escalation path: walk the
// standby ladder (preferring the primary when the job was living on a
// standby), adopting the job onto the first rung that answers; drop
// to the host mesh only when every rung is silent, and surface a
// typed retryable error when there is no mesh either.
func (c *Client) degradeLadder(u []int32, deadline time.Time) ([]int32, error) {
	if len(c.ladder) > 1 {
		prev := c.homeRank
		for rank := range c.ladder {
			if rank == prev {
				continue // the rung that just went silent scores last
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("transport: all-reduce timed out descending the failover ladder: %w", ErrAggregatorSilent)
			}
			err := c.adoptAt(rank, deadline)
			if err == nil {
				// A fence proposed by the dead rung died with it; the
				// joiner re-solicits against the new home.
				c.fenceArmed = false
				out, err := c.switchLoop(u, deadline)
				if errors.Is(err, errSilence) {
					return c.degradeLadder(u, deadline)
				}
				return out, err
			}
			if errors.Is(err, ErrAggregatorSilent) {
				continue // this rung is down too; keep descending
			}
			return nil, err
		}
		// Every rung is silent. Re-home to the primary so the degraded
		// path's probes — and its eventual failback — target rank 0.
		if err := c.rehome(0); err != nil {
			return nil, err
		}
	}
	if c.fb == nil {
		return nil, fmt.Errorf("transport: all-reduce stalled with every aggregator rung silent (%d rungs, %d chunks outstanding): %w",
			len(c.ladder), c.worker.PendingCount(), ErrAggregatorSilent)
	}
	return c.enterFallback(u, deadline)
}

// ladderProbation is the fail-up threshold: how many consecutive
// tensors must see the primary answer a probe before the job climbs
// back to rank 0. It mirrors the mesh's probation knob when a
// fallback is configured (negative pins the job on its standby).
func (c *Client) ladderProbation() int {
	if c.fb != nil {
		return c.fb.cfg.Probation
	}
	return 3
}

// failUpTick runs one round of the fail-up probation at a tensor
// boundary while the job lives on a standby: resolve the previous
// tensor's probe of the primary, climb once the answer streak crosses
// the probation window, and open the next round. The probe proposes
// nothing (it carries the current generation), so the primary's
// probe fence stays un-tripped until the adoption handshake proposes
// the real bump. A climb that races a flapping primary falls back to
// the standby that was serving the job and restarts probation.
func (c *Client) failUpTick(deadline time.Time) error {
	prob := c.ladderProbation()
	if prob < 0 {
		return nil
	}
	if c.upConn.Load() == nil {
		uc, err := net.DialUDP("udp", nil, c.ladder[0])
		if err != nil {
			return nil // cannot probe; stay on the standby
		}
		c.upConn.Store(uc)
	}
	uc := c.upConn.Load()
	if c.upAwait {
		// A short real deadline, not an expired one: Go fails reads on
		// an already-passed deadline without delivering buffered
		// datagrams.
		uc.SetReadDeadline(time.Now().Add(jitterDur(c.frng, c.cfg.RTO/8)))
		for {
			n, err := uc.Read(c.rbuf)
			if err != nil {
				break
			}
			c.recvd.Inc()
			if packet.UnmarshalInto(&c.rp, c.rbuf[:n]) != nil {
				c.corrupt.Inc()
				continue
			}
			if c.rp.Kind == packet.KindProbeAck && c.rp.Idx == c.upSeq {
				c.upAwait = false
				c.upStreak++
				c.failProbeAcks.Inc()
				c.trace(telemetry.EvProbeAck, int32(c.rp.Idx))
			}
		}
		if c.upAwait {
			// The probe went unanswered: the primary is still gone (or
			// flapping); either way the probation clock restarts.
			c.upAwait = false
			c.upStreak = 0
		}
	}
	if c.upStreak >= prob {
		prev := c.homeRank
		c.upStreak = 0
		if err := c.adoptAt(0, deadline); err != nil {
			if errors.Is(err, ErrAggregatorSilent) {
				return c.rehome(prev)
			}
			return err
		}
		c.failFailbacks.Inc()
		c.trace(telemetry.EvFailback, -1)
		return nil
	}
	c.upSeq++
	c.upAwait = true
	p := packet.NewControl(packet.KindProbe, c.cfg.Worker.ID, c.epoch, 0, nil)
	p.Idx = c.upSeq
	c.cbuf = p.AppendMarshal(c.cbuf[:0])
	if _, err := uc.Write(c.cbuf); err == nil {
		c.sent.Inc()
	}
	c.failProbes.Inc()
	c.trace(telemetry.EvProbe, int32(c.upSeq))
	return nil
}

// --- Aggregator half: the adoption roll call ---

// adoptFence is an open adoption roll call, guarded by the aggregator
// mutex. Unlike the elastic memberFence (one joiner fenced in at a
// boundary) it collects the whole membership arriving from a dead
// rung, each member carrying its own frontier.
type adoptFence struct {
	// gen is the proposed job generation (the voters' epoch + 1; a
	// strictly newer proposal supersedes an open roll call).
	gen uint16
	// seen marks workers whose adoption request arrived; count is the
	// number of distinct voters.
	seen  []bool
	count int
	// frontier is the minimum proposed chunk frontier — where the
	// whole membership can provably resume from.
	frontier uint64
}

// handleAdopt processes one KindAdoptJob solicitation: open (or join)
// the roll call for the proposed generation, echo the request with
// Ver=1 while the roll call is short of the membership, and commit —
// wiping the pool under the proposed generation and releasing every
// voter at the minimum frontier — when the last member arrives. A
// duplicate for an already-committed generation gets the release
// re-sent, so a lost KindResume never wedges a voter.
func (a *Aggregator) handleAdopt(sh *aggShard, src netip.AddrPort) {
	p := &sh.pkt
	w := int(p.WorkerID)
	if a.lv != nil {
		// Adoption traffic is liveness — and a worker this standby's own
		// detector wrote off while the job lived elsewhere is plainly
		// back.
		a.lv.tracker.MarkAlive(w, time.Now().UnixNano())
	}
	a.setPeer(p.WorkerID, src)
	a.mu.Lock()
	if int16(p.JobID-a.epochNow()) <= 0 {
		// Stale proposal, or a duplicate for a committed adoption whose
		// release was lost.
		done, gen, frontier := a.adoptDone, a.adoptGen, a.adoptFrontier
		a.mu.Unlock()
		if done && p.JobID == gen {
			sh.ctrl = packet.NewControl(packet.KindResume, p.WorkerID, gen, frontier, nil).AppendMarshal(sh.ctrl[:0])
			a.reply(sh, sh.ctrl, src)
		}
		return
	}
	f := a.adopt
	if f == nil || int16(p.JobID-f.gen) > 0 {
		// A fresh roll call, or one for a strictly newer generation —
		// which supersedes the old: its voters re-send at their RTO.
		f = &adoptFence{gen: p.JobID, seen: make([]bool, len(a.peers)), frontier: ^uint64(0)}
		a.adopt = f
	}
	if !f.seen[w] {
		f.seen[w] = true
		f.count++
	}
	if p.Off < f.frontier {
		f.frontier = p.Off
	}
	if f.count >= a.adoptQuorumLocked() {
		a.commitAdoptLocked(f)
		a.mu.Unlock()
		return
	}
	gen := f.gen
	a.mu.Unlock()
	echo := packet.NewControl(packet.KindAdoptJob, p.WorkerID, gen, p.Off, nil)
	echo.Ver = 1
	sh.ctrl = echo.AppendMarshal(sh.ctrl[:0])
	a.reply(sh, sh.ctrl, src)
}

// adoptQuorumLocked is the roll-call size a rung waits for before
// committing an adoption: the full worker universe without a failure
// detector, the non-retired set with one (graceful leavers and
// evicted workers stay excused).
func (a *Aggregator) adoptQuorumLocked() int {
	if a.lv == nil {
		return len(a.peers)
	}
	n := 0
	for w := range a.peers {
		if !a.lv.tracker.Dead(w) {
			n++
		}
	}
	return n
}

// commitAdoptLocked installs the adopted job: pool wiped under the
// proposed generation (the probe-fence wipe, so nothing aggregated
// before the outage leaks into post-failover slots), the §5.6 repair
// state armed so a lost release is re-sent on stale-generation
// traffic, and every voter released at the minimum adopted frontier
// (marshalled once, worker id patched per peer).
func (a *Aggregator) commitAdoptLocked(f *adoptFence) {
	if err := a.sw.Reconfigure(nil, f.gen); err != nil {
		return
	}
	a.epoch.Store(uint32(f.gen))
	a.adopt = nil
	a.adoptGen, a.adoptFrontier, a.adoptDone = f.gen, f.frontier, true
	if a.lv != nil {
		// An adoption supersedes any recovery or membership fence this
		// rung had in flight.
		a.lv.fence = nil
		a.lv.recovering = false
		a.lv.resumeReady.Store(true)
		a.lv.frontier.Store(f.frontier)
		for i := range a.lv.reported {
			a.lv.reported[i] = false
		}
	}
	a.adoptions.Inc()
	a.traceCtrl(telemetry.EvAdopt, -1, int64(f.frontier))
	a.traceCtrl(telemetry.EvReconfigure, -1, int64(f.gen))
	var wire []byte
	for i := range a.peers {
		if !f.seen[i] {
			continue
		}
		ap := a.peers[i].Load()
		if ap == nil {
			continue
		}
		if wire == nil {
			wire = packet.NewControl(packet.KindResume, uint16(i), f.gen, f.frontier, nil).Marshal()
		} else if err := packet.PatchWorkerID(wire, uint16(i)); err != nil {
			continue
		}
		a.writeCtrl(wire, *ap)
	}
}

// Adoptions reports how many warm-standby adoption roll calls this
// aggregator has committed. Safe for monitoring goroutines.
func (a *Aggregator) Adoptions() uint64 { return a.adoptions.Value() }
