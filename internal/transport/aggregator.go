// Package transport runs the SwitchML protocol over real UDP
// sockets. It implements the paper's alternative deployment model
// (§6 "Deployment model"): a software "parameter aggregator" — the
// switch state machine of Algorithm 3 hosted on a server — plus the
// worker endpoint that streams tensors to it.
//
// The wire format is packet.Marshal; corrupted datagrams are dropped
// by the checksum, and loss is repaired by the worker-side
// retransmission timers exactly as on the programmable switch.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"switchml/internal/core"
	"switchml/internal/packet"
)

// AggregatorConfig configures a software aggregator.
type AggregatorConfig struct {
	// Addr is the UDP listen address, e.g. "127.0.0.1:5555" or
	// ":5555".
	Addr string
	// Switch is the aggregation pool configuration; LossRecovery
	// should be true on any real network.
	Switch core.SwitchConfig
	// DropResult, when non-nil, is consulted before each result send
	// and drops the packet when it returns true. It exists for loss
	// testing on loopback networks that never drop.
	DropResult func(p *packet.Packet) bool
}

// Aggregator is a UDP server hosting one job's aggregation pool. It
// learns worker addresses from the source of their update packets,
// so no registration step is needed; a worker must send before it
// can receive, which the protocol guarantees.
type Aggregator struct {
	cfg  AggregatorConfig
	conn *net.UDPConn
	sw   *core.Switch

	mu    sync.Mutex
	peers []*net.UDPAddr // indexed by worker id

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewAggregator binds the socket and starts the serving goroutine.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	sw, err := core.NewSwitch(cfg.Switch)
	if err != nil {
		return nil, err
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	a := &Aggregator{
		cfg:    cfg,
		conn:   conn,
		sw:     sw,
		peers:  make([]*net.UDPAddr, cfg.Switch.Workers),
		closed: make(chan struct{}),
	}
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *Aggregator) Addr() *net.UDPAddr { return a.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns the switch state machine counters.
func (a *Aggregator) Stats() core.SwitchStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sw.Stats()
}

// Close shuts the server down and waits for the serving goroutine.
func (a *Aggregator) Close() error {
	select {
	case <-a.closed:
		return nil
	default:
	}
	close(a.closed)
	err := a.conn.Close()
	a.wg.Wait()
	return err
}

// serve is the run-to-completion loop: one datagram in, zero or more
// datagrams out — the software analogue of the switch pipeline.
func (a *Aggregator) serve() {
	defer a.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, src, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient error: keep serving
		}
		p, err := packet.Unmarshal(buf[:n])
		if err != nil {
			continue // corrupted datagram: drop (§3.4)
		}
		if p.Kind != packet.KindUpdate || int(p.WorkerID) >= len(a.peers) {
			continue
		}
		a.mu.Lock()
		a.peers[p.WorkerID] = src
		resp := a.sw.Handle(p)
		a.mu.Unlock()
		if resp.Pkt == nil {
			continue
		}
		if a.cfg.DropResult != nil && a.cfg.DropResult(resp.Pkt) {
			continue
		}
		out := resp.Pkt.Marshal()
		if resp.Multicast {
			for _, peer := range a.snapshotPeers() {
				if peer != nil {
					a.conn.WriteToUDP(out, peer)
				}
			}
			continue
		}
		if peer := a.peer(resp.Pkt.WorkerID); peer != nil {
			a.conn.WriteToUDP(out, peer)
		}
	}
}

func (a *Aggregator) peer(wid uint16) *net.UDPAddr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(wid) >= len(a.peers) {
		return nil
	}
	return a.peers[wid]
}

func (a *Aggregator) snapshotPeers() []*net.UDPAddr {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*net.UDPAddr, len(a.peers))
	copy(out, a.peers)
	return out
}

// Reset clears the aggregation pools and forgets worker addresses,
// preparing the aggregator for a restarted job (§3.2: worker failures
// are handled by the framework restarting the job). In-flight
// datagrams from the dead job are rejected by the fresh state.
func (a *Aggregator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sw.Reset()
	for i := range a.peers {
		a.peers[i] = nil
	}
}
