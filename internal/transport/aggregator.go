// Package transport runs the SwitchML protocol over real UDP
// sockets. It implements the paper's alternative deployment model
// (§6 "Deployment model"): a software "parameter aggregator" — the
// switch state machine of Algorithm 3 hosted on a server — plus the
// worker endpoint that streams tensors to it.
//
// The wire format is packet.Marshal; corrupted datagrams are dropped
// by the checksum, and loss is repaired by the worker-side
// retransmission timers exactly as on the programmable switch.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"switchml/internal/core"
	"switchml/internal/faults"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// AggregatorConfig configures a software aggregator.
type AggregatorConfig struct {
	// Addr is the UDP listen address, e.g. "127.0.0.1:5555" or
	// ":5555".
	Addr string
	// Switch is the aggregation pool configuration; LossRecovery
	// should be true on any real network.
	Switch core.SwitchConfig
	// DropResult, when non-nil, is consulted before each result send
	// and drops the packet when it returns true. It exists for loss
	// testing on loopback networks that never drop.
	DropResult func(p *packet.Packet) bool
	// Liveness, when non-nil, enables the failure detector: silent
	// workers are evicted and the survivors are resumed under a new job
	// generation (§5.6).
	Liveness *LivenessConfig
	// Inject, when non-nil, applies seeded loss, duplication and
	// corruption to outgoing result datagrams — chaos testing on
	// loopback networks that never misbehave. Control datagrams
	// (reconfig/resume) are sent clean; on a real network they are
	// protected by the sweep-period rebroadcast instead.
	Inject *faults.InjectorConfig
	// Metrics receives the aggregator's counters (datagram traffic and
	// the switch protocol counters). Nil allocates a private registry,
	// available through Registry.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, observes protocol events stamped with
	// wall-clock nanoseconds.
	Tracer telemetry.Tracer
}

// Aggregator is a UDP server hosting one job's aggregation pool. It
// learns worker addresses from the source of their update packets,
// so no registration step is needed; a worker must send before it
// can receive, which the protocol guarantees.
type Aggregator struct {
	cfg  AggregatorConfig
	conn *net.UDPConn
	sw   *core.Switch
	reg  *telemetry.Registry

	recvd, corrupt, sent *telemetry.Counter

	inj *faults.PacketInjector

	mu    sync.Mutex
	peers []*net.UDPAddr // indexed by worker id
	epoch uint16         // current job generation
	lv    *liveness      // nil unless cfg.Liveness is set

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewAggregator binds the socket and starts the serving goroutine.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	cfg.Switch.Metrics = reg
	cfg.Switch.Tracer = cfg.Tracer
	if cfg.Switch.Now == nil {
		cfg.Switch.Now = telemetry.WallClock
	}
	sw, err := core.NewSwitch(cfg.Switch)
	if err != nil {
		return nil, err
	}
	var inj *faults.PacketInjector
	if cfg.Inject != nil {
		inj, err = faults.NewPacketInjector(*cfg.Inject)
		if err != nil {
			return nil, err
		}
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	a := &Aggregator{
		cfg:     cfg,
		conn:    conn,
		sw:      sw,
		reg:     reg,
		inj:     inj,
		recvd:   reg.Counter("udp_datagrams_received_total", "role", "aggregator"),
		corrupt: reg.Counter("udp_datagrams_corrupted_total", "role", "aggregator"),
		sent:    reg.Counter("udp_datagrams_sent_total", "role", "aggregator"),
		peers:   make([]*net.UDPAddr, cfg.Switch.Workers),
		epoch:   cfg.Switch.JobID,
		closed:  make(chan struct{}),
	}
	if cfg.Liveness != nil {
		lc := *cfg.Liveness
		lc.fillDefaults()
		a.lv = &liveness{
			cfg:      lc,
			tracker:  faults.NewTracker(cfg.Switch.Workers, int64(lc.SilenceAfter)),
			reported: make([]bool, cfg.Switch.Workers),
		}
		a.wg.Add(1)
		go a.sweepLoop()
	}
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *Aggregator) Addr() *net.UDPAddr { return a.conn.LocalAddr().(*net.UDPAddr) }

// Registry returns the metrics registry backing this aggregator's
// counters — the one from the config, or the private registry
// allocated when none was supplied.
func (a *Aggregator) Registry() *telemetry.Registry { return a.reg }

// Stats returns the switch state machine counters. The counters are
// atomic, so this is safe to call concurrently with the serving
// goroutine — no lock is taken and packet handling is never stalled
// by monitoring reads.
func (a *Aggregator) Stats() core.SwitchStats { return a.sw.Stats() }

// Close shuts the server down and waits for the serving goroutine.
func (a *Aggregator) Close() error {
	select {
	case <-a.closed:
		return nil
	default:
	}
	close(a.closed)
	err := a.conn.Close()
	a.wg.Wait()
	return err
}

// serve is the run-to-completion loop: one datagram in, zero or more
// datagrams out — the software analogue of the switch pipeline.
func (a *Aggregator) serve() {
	defer a.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, src, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient error: keep serving
		}
		a.recvd.Inc()
		p, err := packet.Unmarshal(buf[:n])
		if err != nil {
			a.corrupt.Inc()
			continue // corrupted datagram: drop (§3.4)
		}
		if int(p.WorkerID) >= len(a.peers) {
			continue
		}
		switch p.Kind {
		case packet.KindUpdate:
			a.handleUpdate(p, src)
		case packet.KindHeartbeat:
			a.touch(p, src)
		case packet.KindReport:
			a.handleReport(p, src)
		default:
			// Workers never originate result/reconfig/resume kinds.
		}
	}
}

// handleUpdate feeds one model-update into the pool. With a liveness
// detector attached it also polices membership: traffic from a
// retired worker is answered with the reconfigure directive (so a
// merely-slow worker learns it was evicted and can fail fast), and
// stale-generation traffic from a live worker means the resume
// directive was lost — it is re-sent instead of feeding the pool.
func (a *Aggregator) handleUpdate(p *packet.Packet, src *net.UDPAddr) {
	a.mu.Lock()
	if a.lv != nil {
		if a.lv.tracker.Dead(int(p.WorkerID)) {
			out := packet.NewControl(packet.KindReconfig, p.WorkerID, a.epoch, 0, a.survivorsLocked()).Marshal()
			a.mu.Unlock()
			a.conn.WriteToUDP(out, src)
			a.sent.Inc()
			return
		}
		a.lv.tracker.Touch(int(p.WorkerID), time.Now().UnixNano())
		if p.JobID != a.epoch && a.lv.resumeReady {
			out := packet.NewControl(packet.KindResume, p.WorkerID, a.epoch, a.lv.frontier, nil).Marshal()
			a.mu.Unlock()
			a.conn.WriteToUDP(out, src)
			a.sent.Inc()
			return
		}
	}
	a.peers[p.WorkerID] = src
	resp := a.sw.Handle(p)
	a.mu.Unlock()
	if resp.Pkt == nil {
		return
	}
	if a.cfg.DropResult != nil && a.cfg.DropResult(resp.Pkt) {
		return
	}
	out := resp.Pkt.Marshal()
	if resp.Multicast {
		for _, peer := range a.snapshotPeers() {
			if peer != nil {
				a.write(out, peer)
			}
		}
		return
	}
	if peer := a.peer(resp.Pkt.WorkerID); peer != nil {
		a.write(out, peer)
	}
}

// write sends one result datagram, consulting the fault injector.
func (a *Aggregator) write(out []byte, peer *net.UDPAddr) {
	writes := 1
	if a.inj != nil {
		switch a.inj.Judge() {
		case faults.Drop:
			return
		case faults.Corrupt:
			// The multicast loop shares out across peers; mangle a copy.
			b := append([]byte(nil), out...)
			a.inj.Mangle(b)
			out = b
		case faults.Duplicate:
			writes = 2
		}
	}
	for i := 0; i < writes; i++ {
		a.conn.WriteToUDP(out, peer)
		a.sent.Inc()
	}
}

func (a *Aggregator) peer(wid uint16) *net.UDPAddr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(wid) >= len(a.peers) {
		return nil
	}
	return a.peers[wid]
}

func (a *Aggregator) snapshotPeers() []*net.UDPAddr {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*net.UDPAddr, len(a.peers))
	copy(out, a.peers)
	return out
}

// Reset clears the aggregation pools and forgets worker addresses,
// preparing the aggregator for a restarted job (§3.2: worker failures
// are handled by the framework restarting the job). In-flight
// datagrams from the dead job are rejected by the fresh state.
func (a *Aggregator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sw.Reset()
	for i := range a.peers {
		a.peers[i] = nil
	}
	if a.lv != nil {
		// A fresh tracker: every worker is back to "never seen", so a
		// host that does not rejoin the restarted job is simply ignored
		// rather than suspected.
		a.lv.tracker = faults.NewTracker(len(a.peers), int64(a.lv.cfg.SilenceAfter))
		for i := range a.lv.reported {
			a.lv.reported[i] = false
		}
		a.lv.recovering = false
		a.lv.resumeReady = false
		a.lv.frontier = 0
	}
}
