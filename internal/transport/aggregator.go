// Package transport runs the SwitchML protocol over real UDP
// sockets. It implements the paper's alternative deployment model
// (§6 "Deployment model"): a software "parameter aggregator" — the
// switch state machine of Algorithm 3 hosted on a server — plus the
// worker endpoint that streams tensors to it.
//
// The wire format is packet.Marshal; corrupted datagrams are dropped
// by the checksum, and loss is repaired by the worker-side
// retransmission timers exactly as on the programmable switch.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"switchml/internal/core"
	"switchml/internal/faults"
	"switchml/internal/netio"
	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// DefaultBatch is the burst ceiling selected when a Batch field is
// left zero: deep enough to amortize the per-wakeup syscall cost,
// shallow enough that one burst's replies fit comfortably in socket
// buffers.
const DefaultBatch = 32

// BatchOccupancyBuckets bound the batch-occupancy histograms:
// datagrams drained per receive wakeup.
var BatchOccupancyBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// AggregatorConfig configures a software aggregator.
type AggregatorConfig struct {
	// Addr is the UDP listen address, e.g. "127.0.0.1:5555" or
	// ":5555".
	Addr string
	// Switch is the aggregation pool configuration; LossRecovery
	// should be true on any real network.
	Switch core.SwitchConfig
	// Shards is the number of receive goroutines draining the socket,
	// the software analogue of the paper's Flow Director steering
	// (Appendix B: "every CPU core ... uses a disjoint set of
	// aggregation slots"). Zero selects 4. With batching enabled each
	// shard owns its own SO_REUSEPORT socket where the platform
	// allows, so the kernel itself steers each worker flow to exactly
	// one shard; otherwise the shards share one socket. Per-slot
	// locking inside the sharded switch keeps concurrent handling
	// correct no matter which goroutine a packet lands on.
	Shards int
	// Batch is the per-shard burst ceiling: each shard reads up to
	// Batch datagrams per wakeup (one recvmmsg on Linux), runs every
	// packet to completion, and flushes all replies in one sendmmsg —
	// equal-size result multicasts ride UDP segmentation-offload
	// trains where the kernel supports them. Zero selects 32; 1
	// selects the legacy one-datagram-per-syscall loop (the
	// measurement baseline, and the exact pre-batching behavior).
	Batch int
	// BusyPoll makes shard receive loops spin briefly on an empty
	// socket before parking in the netpoller, trading CPU for latency.
	// Only meaningful with Batch > 1.
	BusyPoll bool
	// DropResult, when non-nil, is consulted before each result send
	// and drops the packet when it returns true. It exists for loss
	// testing on loopback networks that never drop. The packet is
	// only valid for the duration of the call.
	DropResult func(p *packet.Packet) bool
	// Liveness, when non-nil, enables the failure detector: silent
	// workers are evicted and the survivors are resumed under a new job
	// generation (§5.6). It is also the prerequisite for elastic
	// membership — graceful join and leave need the tracker's
	// draining/departed bookkeeping.
	Liveness *LivenessConfig
	// Absent lists worker ids outside the initial membership: slots
	// reserved in the worker universe (Switch.Workers) for hosts that
	// will join later through the graceful-join fence. Requires
	// Liveness.
	Absent []int
	// Inject, when non-nil, applies seeded loss, duplication and
	// corruption to outgoing result datagrams — chaos testing on
	// loopback networks that never misbehave. Control datagrams
	// (reconfig/resume) are sent clean; on a real network they are
	// protected by the sweep-period rebroadcast instead.
	Inject *faults.InjectorConfig
	// Metrics receives the aggregator's counters (datagram traffic and
	// the switch protocol counters). Nil allocates a private registry,
	// available through Registry.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, observes protocol events stamped with
	// wall-clock nanoseconds.
	Tracer telemetry.Tracer
}

// Aggregator is a UDP server hosting one job's aggregation pool. It
// learns worker addresses from the source of their update packets,
// so no registration step is needed; a worker must send before it
// can receive, which the protocol guarantees.
//
// N shard goroutines drain the socket concurrently; each owns its
// receive buffer, decoded packet, response packet and wire buffer, so
// the steady-state datagram path performs no heap allocation. Worker
// addresses live in an atomic table (compare-before-store keeps the
// common case write-free), the liveness tracker is internally atomic,
// and the recovery state machine — the only cross-shard state — is
// guarded by mu and touched only on control traffic.
type Aggregator struct {
	cfg  AggregatorConfig
	conn *net.UDPConn
	// conns are every socket bound to the listen address: just conn,
	// or one SO_REUSEPORT socket per shard when batching could claim
	// them. conn == conns[0] always; the control plane sends on it.
	conns []*net.UDPConn
	sw    *core.ShardedSwitch
	reg   *telemetry.Registry
	// netMode names the I/O strategy the shard loops run
	// ("per-packet", or the netio mode: portable/mmsg/gso). Written
	// once before the serving goroutines start.
	netMode string

	recvd, corrupt, sent *telemetry.Counter
	// unexpected counts well-formed datagrams whose kind the serve
	// loops do not dispatch (workers never originate result/reconfig/
	// resume kinds); a nonzero value means a peer is confused or a new
	// kind is missing its arm.
	unexpected *telemetry.Counter
	// sendErrs counts result/control datagrams whose socket send
	// failed. UDP stays best-effort — the protocol's loss recovery
	// owns repair — but a non-zero rate points at dead routes or
	// misconfiguration, so it is surfaced instead of discarded.
	sendErrs *telemetry.Counter
	// shardCtrs[i] counts datagrams drained by shard i, the load view
	// switchml-top derives shard balance from.
	shardCtrs []*telemetry.Counter
	// shardOcc[i] observes shard i's burst occupancy (datagrams per
	// recv wakeup); its quantiles tell how full the batch pipeline
	// actually runs.
	shardOcc []*telemetry.Histogram

	inj *faults.PacketInjector

	// peers is the learned worker address table, indexed by worker
	// id. Entries are written at most once per address change.
	peers []atomic.Pointer[netip.AddrPort]
	// down simulates the aggregation program dying while the host and
	// its address stay up: every datagram is silently discarded, so
	// workers see pure silence — the failure mode the client-side
	// fallback detects. Toggled by SetDown from chaos tests.
	down atomic.Bool
	// epoch is the current job generation; read lock-free on the
	// per-packet path, written under mu by recovery.
	epoch atomic.Uint32

	mu sync.Mutex // guards the recovery state machine (lv)
	lv *liveness  // nil unless cfg.Liveness is set

	// Warm-standby adoption state (failover.go), guarded by mu: adopt
	// is the open roll call; adoptGen/adoptFrontier/adoptDone record
	// the last committed adoption so a lost release is re-sent on a
	// duplicate request. adoptions counts committed adoptions.
	adopt         *adoptFence
	adoptGen      uint16
	adoptFrontier uint64
	adoptDone     bool
	adoptions     *telemetry.Counter

	// sncs collects the shard batched socket views for introspection
	// (transient-send retry totals); empty on the legacy loop.
	sncs []*netio.Conn

	wg     sync.WaitGroup
	closed chan struct{}
}

// aggShard is one receive goroutine's private working set: with it,
// the datagram-in/datagrams-out cycle touches no shared mutable
// memory beyond the slot being aggregated.
type aggShard struct {
	buf     []byte        // datagram receive buffer (legacy loop)
	pkt     packet.Packet // decoded request (vector storage reused)
	out     packet.Packet // response storage for HandleInto
	wire    []byte        // marshalled response
	ctrl    []byte        // marshalled control reply (reconfig/resume)
	mangled []byte        // injector corruption scratch
	// datagrams is this shard's share of the drain load (atomic; one
	// captured pointer, so counting stays allocation-free).
	datagrams *telemetry.Counter

	// Batched-loop state. nc is the shard's batched socket view; occ
	// its burst-occupancy histogram. block accumulates the burst's
	// equal-size multicast results so one flush sends the same bytes
	// to every peer as a segment train (the completed results of a
	// burst are identical for all workers, so the block is built once
	// and addressed W times).
	nc       *netio.Conn
	occ      *telemetry.Histogram
	block    []byte
	blockSeg int
}

// NewAggregator binds the socket(s) and starts the serving
// goroutines.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Batch == 0 {
		cfg.Batch = DefaultBatch
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	cfg.Switch.Metrics = reg
	cfg.Switch.Tracer = cfg.Tracer
	if cfg.Switch.Now == nil {
		cfg.Switch.Now = telemetry.WallClock
	}
	sw, err := core.NewShardedSwitch(cfg.Switch)
	if err != nil {
		return nil, err
	}
	var inj *faults.PacketInjector
	if cfg.Inject != nil {
		inj, err = faults.NewPacketInjector(*cfg.Inject)
		if err != nil {
			return nil, err
		}
	}
	conns, err := bindAggSockets(cfg.Addr, cfg.Shards, cfg.Batch > 1)
	if err != nil {
		return nil, err
	}
	conn := conns[0]
	a := &Aggregator{
		cfg:        cfg,
		conn:       conn,
		conns:      conns,
		sw:         sw,
		reg:        reg,
		inj:        inj,
		netMode:    "per-packet",
		recvd:      reg.Counter("udp_datagrams_received_total", "role", "aggregator"),
		corrupt:    reg.Counter("udp_datagrams_corrupted_total", "role", "aggregator"),
		sent:       reg.Counter("udp_datagrams_sent_total", "role", "aggregator"),
		sendErrs:   reg.Counter("udp_send_errors_total", "role", "aggregator"),
		unexpected: reg.Counter("udp_unexpected_kind_total", "role", "aggregator"),
		adoptions:  reg.Counter("failover_adoptions_total", "role", "aggregator"),
		peers:      make([]atomic.Pointer[netip.AddrPort], cfg.Switch.Workers),
		closed:     make(chan struct{}),
	}
	a.epoch.Store(uint32(cfg.Switch.JobID))
	if len(cfg.Absent) > 0 && cfg.Liveness == nil {
		closeAll(conns)
		return nil, fmt.Errorf("transport: Absent workers need Liveness (elastic membership rides on the failure detector)")
	}
	if cfg.Liveness != nil {
		lc := *cfg.Liveness
		lc.fillDefaults()
		a.lv = &liveness{
			cfg:       lc,
			tracker:   faults.NewTracker(cfg.Switch.Workers, int64(lc.SilenceAfter)),
			reported:  make([]bool, cfg.Switch.Workers),
			leavePend: make([]bool, cfg.Switch.Workers),
			leaveOff:  make([]uint64, cfg.Switch.Workers),
			maxOff:    make([]atomic.Uint64, cfg.Switch.Workers),
		}
		if len(cfg.Absent) > 0 {
			active := make([]bool, cfg.Switch.Workers)
			for i := range active {
				active[i] = true
			}
			for _, w := range cfg.Absent {
				if w < 0 || w >= cfg.Switch.Workers {
					closeAll(conns)
					return nil, fmt.Errorf("transport: absent worker %d out of range [0,%d)", w, cfg.Switch.Workers)
				}
				// Departed, not dead: the slot is empty by intent, and
				// the graceful-join fence is how it gets filled.
				a.lv.tracker.MarkDeparted(w)
				active[w] = false
			}
			if err := a.sw.Reconfigure(active, cfg.Switch.JobID); err != nil {
				closeAll(conns)
				return nil, err
			}
		}
		a.wg.Add(1)
		go a.sweepLoop()
	}
	a.shardCtrs = make([]*telemetry.Counter, cfg.Shards)
	a.shardOcc = make([]*telemetry.Histogram, cfg.Shards)
	mtu := aggWireMTU(cfg.Switch.SlotElems)
	for i := 0; i < cfg.Shards; i++ {
		a.shardCtrs[i] = reg.Counter("agg_shard_datagrams_total", "shard", fmt.Sprintf("%d", i))
		sh := &aggShard{datagrams: a.shardCtrs[i]}
		if cfg.Batch > 1 {
			nc, werr := netio.Wrap(conns[i%len(conns)], netio.Config{
				Batch:       cfg.Batch,
				MTU:         mtu,
				BusyPoll:    cfg.BusyPoll,
				OnSendError: func(err error, n int) { a.sendErrs.Add(uint64(n)) },
			})
			if werr != nil {
				// A socket that cannot even expose its fd is broken;
				// the constructor has only the sweeper running so far.
				close(a.closed)
				closeAll(conns)
				a.wg.Wait()
				return nil, werr
			}
			sh.nc = nc
			a.sncs = append(a.sncs, nc)
			sh.occ = reg.Histogram("agg_batch_occupancy", BatchOccupancyBuckets, "shard", fmt.Sprintf("%d", i))
			a.shardOcc[i] = sh.occ
			sh.block = make([]byte, 0, cfg.Batch*mtu)
			a.netMode = nc.Mode().String()
			a.wg.Add(1)
			go a.serveBatched(sh)
			continue
		}
		sh.buf = make([]byte, 65536)
		a.wg.Add(1)
		go a.serve(sh)
	}
	return a, nil
}

// aggWireMTU sizes shard arenas from the largest result packet the
// pool can emit.
func aggWireMTU(slotElems int) int {
	probe := packet.Packet{Vector: make([]int32, slotElems)}
	if m := probe.MarshalledSize() + 16; m > 2048 {
		return m
	}
	return 2048
}

// closeAll releases every bound socket.
func closeAll(conns []*net.UDPConn) {
	for _, c := range conns {
		c.Close()
	}
}

// bindAggSockets binds the listen address. With batching on and more
// than one shard it tries one SO_REUSEPORT socket per shard first —
// the kernel then steers each worker flow to exactly one shard
// socket, the closest software analogue of NIC receive-side steering —
// and falls back to a single shared socket where REUSEPORT is
// unavailable.
func bindAggSockets(addr string, shards int, batched bool) ([]*net.UDPConn, error) {
	if batched && shards > 1 {
		lc := net.ListenConfig{Control: netio.ControlReusePort}
		if pc, err := lc.ListenPacket(context.Background(), "udp", addr); err == nil {
			conns := []*net.UDPConn{pc.(*net.UDPConn)}
			bound := conns[0].LocalAddr().String()
			ok := true
			for i := 1; i < shards; i++ {
				extra, err := lc.ListenPacket(context.Background(), "udp", bound)
				if err != nil {
					ok = false
					break
				}
				conns = append(conns, extra.(*net.UDPConn))
			}
			if ok {
				return conns, nil
			}
			closeAll(conns)
		}
	}
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ra)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return []*net.UDPConn{conn}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *Aggregator) Addr() *net.UDPAddr { return a.conn.LocalAddr().(*net.UDPAddr) }

// Registry returns the metrics registry backing this aggregator's
// counters — the one from the config, or the private registry
// allocated when none was supplied.
func (a *Aggregator) Registry() *telemetry.Registry { return a.reg }

// Stats returns the switch state machine counters. The counters are
// atomic, so this is safe to call concurrently with the serving
// goroutines — no lock is taken and packet handling is never stalled
// by monitoring reads.
func (a *Aggregator) Stats() core.SwitchStats { return a.sw.Stats() }

// Close shuts the server down and waits for the serving goroutines.
func (a *Aggregator) Close() error {
	select {
	case <-a.closed:
		return nil
	default:
	}
	close(a.closed)
	err := a.conn.Close()
	for _, c := range a.conns[1:] {
		c.Close()
	}
	a.wg.Wait()
	return err
}

// serve is one shard's run-to-completion loop: one datagram in, zero
// or more datagrams out — the software analogue of one pipeline of
// the switch. All per-packet storage belongs to the shard, so the
// steady-state cycle is allocation-free.
func (a *Aggregator) serve(sh *aggShard) {
	defer a.wg.Done()
	for {
		n, src, err := a.conn.ReadFromUDPAddrPort(sh.buf)
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient error: keep serving
		}
		a.recvd.Inc()
		sh.datagrams.Inc()
		if a.down.Load() {
			continue // the aggregation program is "dead": pure silence
		}
		if err := packet.UnmarshalInto(&sh.pkt, sh.buf[:n]); err != nil {
			a.corrupt.Inc()
			continue // corrupted datagram: drop (§3.4)
		}
		if int(sh.pkt.WorkerID) >= len(a.peers) {
			continue
		}
		//switchml:dispatch
		switch sh.pkt.Kind {
		case packet.KindUpdate:
			a.handleUpdate(sh, src)
		case packet.KindHeartbeat:
			a.touch(&sh.pkt, src)
		case packet.KindReport:
			a.handleReport(&sh.pkt, src)
		case packet.KindProbe:
			a.handleProbe(sh, src)
		case packet.KindJoin:
			a.handleJoin(&sh.pkt, src)
		case packet.KindLeave:
			a.handleLeave(&sh.pkt, src)
		case packet.KindAdoptJob:
			a.handleAdopt(sh, src)
		default:
			// Workers never originate result/reconfig/resume kinds;
			// count the drop so a confused peer is visible.
			a.unexpected.Inc()
		}
	}
}

// serveBatched is one shard's batched run-to-completion loop: up to
// cfg.Batch datagrams drained per wakeup (one recvmmsg on Linux, with
// GRO coalescing where the kernel offers it), every packet run to
// completion against the shard's private arena with zero channel hops,
// and all replies flushed in one sendmmsg — the burst's equal-size
// multicast results riding a single segmentation-offload train per
// peer. Control handlers (join/leave/report/heartbeat) are shared
// with the legacy loop and send immediately on the control socket;
// only the datagram-heavy update/result path is staged.
func (a *Aggregator) serveBatched(sh *aggShard) {
	defer a.wg.Done()
	for {
		n, err := sh.nc.Recv()
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient error: keep serving
		}
		sh.occ.Observe(float64(n))
		a.recvd.Add(uint64(n))
		sh.datagrams.Add(uint64(n))
		if a.down.Load() {
			continue // the aggregation program is "dead": pure silence
		}
		for i := 0; i < n; i++ {
			m := &sh.nc.Msgs[i]
			if err := packet.UnmarshalInto(&sh.pkt, m.Buf); err != nil {
				a.corrupt.Inc()
				continue // corrupted datagram: drop (§3.4)
			}
			if int(sh.pkt.WorkerID) >= len(a.peers) {
				continue
			}
			//switchml:dispatch
			switch sh.pkt.Kind {
			case packet.KindUpdate:
				a.handleUpdate(sh, m.Addr)
			case packet.KindHeartbeat:
				a.touch(&sh.pkt, m.Addr)
			case packet.KindReport:
				a.handleReport(&sh.pkt, m.Addr)
			case packet.KindProbe:
				a.handleProbe(sh, m.Addr)
			case packet.KindJoin:
				a.handleJoin(&sh.pkt, m.Addr)
			case packet.KindLeave:
				a.handleLeave(&sh.pkt, m.Addr)
			case packet.KindAdoptJob:
				a.handleAdopt(sh, m.Addr)
			default:
				// Workers never originate result/reconfig/resume kinds;
				// count the drop so a confused peer is visible.
				a.unexpected.Inc()
			}
		}
		a.flushShard(sh)
	}
}

// stageMulticast accumulates the burst's multicast results. Completed
// slot results are byte-identical for every worker, so the shard
// builds the block once and flushShard addresses it to each peer as
// one segment train. A segment-size change or a full block flushes
// eagerly — correctness never depends on the burst boundary.
//
//switchml:hotpath
func (a *Aggregator) stageMulticast(sh *aggShard) {
	if sh.blockSeg != 0 && (sh.blockSeg != len(sh.wire) || len(sh.block)+len(sh.wire) > cap(sh.block)) {
		a.flushShard(sh)
	}
	sh.blockSeg = len(sh.wire)
	sh.block = append(sh.block, sh.wire...) //switchml:allow hotpath -- append into a fixed-capacity block; the flush above guarantees room

}

// flushShard fans the accumulated multicast block out to every known
// peer as a segment train and pushes all staged datagrams to the
// kernel in one batched send.
//
//switchml:hotpath
func (a *Aggregator) flushShard(sh *aggShard) {
	if len(sh.block) > 0 {
		segs := uint64((len(sh.block) + sh.blockSeg - 1) / sh.blockSeg)
		for i := range a.peers {
			if ap := a.peers[i].Load(); ap != nil {
				sh.nc.AppendTrain(sh.block, sh.blockSeg, *ap)
				a.sent.Add(segs)
			}
		}
	}
	sh.nc.Flush()
	// Reset only after Flush returns: in GSO mode the staged train
	// sends directly from sh.block's storage, so the block must stay
	// untouched until the kernel has copied it out.
	sh.block = sh.block[:0]
	sh.blockSeg = 0
}

// reply sends a control datagram back to a packet's source: staged on
// the shard's batched socket when it has one (AppendTo copies the
// payload, so the shard's ctrl scratch can be reused immediately),
// immediate on the shared socket otherwise.
func (a *Aggregator) reply(sh *aggShard, wire []byte, to netip.AddrPort) {
	if sh.nc != nil {
		sh.nc.AppendTo(wire, to)
		a.sent.Inc()
		return
	}
	a.writeCtrl(wire, to)
}

// writeCtrl sends one control datagram on the shared socket. Failures
// are counted, not retried: UDP control traffic is already protected
// by the sweep-period rebroadcast and worker retransmission.
func (a *Aggregator) writeCtrl(wire []byte, to netip.AddrPort) {
	if _, err := a.conn.WriteToUDPAddrPort(wire, to); err != nil {
		a.sendErrs.Inc()
		return
	}
	a.sent.Inc()
}

// epochNow returns the current job generation.
func (a *Aggregator) epochNow() uint16 { return uint16(a.epoch.Load()) }

// setPeer records the worker's address, writing only on change so
// the steady-state path stays read-only and allocation-free.
func (a *Aggregator) setPeer(w uint16, src netip.AddrPort) {
	if cur := a.peers[w].Load(); cur != nil && *cur == src {
		return
	}
	ap := src
	a.peers[w].Store(&ap)
}

// handleUpdate feeds one model-update into the pool. With a liveness
// detector attached it also polices membership: traffic from a
// retired worker is answered with the reconfigure directive (so a
// merely-slow worker learns it was evicted and can fail fast), and
// stale-generation traffic from a live worker means the resume
// directive was lost — it is re-sent instead of feeding the pool.
// The clean path — touch the tracker, aggregate, reply — takes no
// lock beyond the packet's slot.
func (a *Aggregator) handleUpdate(sh *aggShard, src netip.AddrPort) {
	p := &sh.pkt
	w := int(p.WorkerID)
	if a.lv != nil {
		if a.lv.tracker.Dead(w) {
			a.mu.Lock()
			vec := a.survivorsLocked()
			a.mu.Unlock()
			sh.ctrl = packet.NewControl(packet.KindReconfig, p.WorkerID, a.epochNow(), 0, vec).AppendMarshal(sh.ctrl[:0])
			a.reply(sh, sh.ctrl, src)
			return
		}
		a.lv.tracker.Touch(w, time.Now().UnixNano())
		if a.lv.leaveArmed.Load() {
			// A drain is pending: this update is the progress evidence
			// its commit waits on (elastic.go).
			a.lv.bumpMaxOff(w, p.Off)
		}
		if p.JobID != a.epochNow() && a.lv.resumeReady.Load() {
			sh.ctrl = packet.NewControl(packet.KindResume, p.WorkerID, a.epochNow(), a.lv.frontier.Load(), nil).AppendMarshal(sh.ctrl[:0])
			a.reply(sh, sh.ctrl, src)
			return
		}
	}
	a.setPeer(p.WorkerID, src)
	resp := a.sw.HandleInto(p, &sh.out)
	if resp.Pkt == nil {
		return
	}
	if a.cfg.DropResult != nil && a.cfg.DropResult(resp.Pkt) {
		return
	}
	sh.wire = resp.Pkt.AppendMarshal(sh.wire[:0])
	if resp.Multicast {
		if sh.nc != nil && a.inj == nil {
			a.stageMulticast(sh)
			return
		}
		for i := range a.peers {
			if ap := a.peers[i].Load(); ap != nil {
				a.write(sh, *ap)
			}
		}
		return
	}
	if int(resp.Pkt.WorkerID) < len(a.peers) {
		if ap := a.peers[resp.Pkt.WorkerID].Load(); ap != nil {
			if sh.nc != nil && a.inj == nil {
				sh.nc.AppendTo(sh.wire, *ap)
				a.sent.Inc()
			} else {
				a.write(sh, *ap)
			}
		}
	}
}

// handleProbe answers a degraded worker asking whether the aggregator
// is back. The probe carries the generation the workers will fail
// back under; seeing a newer generation than our own means an outage
// happened (possibly a restart that lost the bump), so the pool is
// wiped under the proposed generation before answering — the fence
// that keeps anything aggregated before the outage from leaking into
// post-failback slots. The ack echoes the probe sequence so the
// worker can match it to its probation window.
func (a *Aggregator) handleProbe(sh *aggShard, src netip.AddrPort) {
	p := &sh.pkt
	if a.lv != nil {
		if a.lv.tracker.Dead(int(p.WorkerID)) {
			return
		}
		// Probes are liveness: a worker on the mesh is silent on the
		// update path but very much alive.
		a.lv.tracker.Touch(int(p.WorkerID), time.Now().UnixNano())
	}
	a.setPeer(p.WorkerID, src)
	if int16(p.JobID-a.epochNow()) > 0 {
		a.mu.Lock()
		if prop := p.JobID; int16(prop-a.epochNow()) > 0 {
			if a.sw.Reconfigure(nil, prop) == nil {
				a.epoch.Store(uint32(prop))
				a.traceCtrl(telemetry.EvReconfigure, int32(p.WorkerID), int64(prop))
			}
		}
		a.mu.Unlock()
	}
	ack := packet.NewControl(packet.KindProbeAck, p.WorkerID, a.epochNow(), 0, nil)
	ack.Idx = p.Idx
	sh.ctrl = ack.AppendMarshal(sh.ctrl[:0])
	a.reply(sh, sh.ctrl, src)
}

// SetDown "kills" (or revives) the aggregation program while the
// socket stays bound: every inbound datagram is silently discarded,
// exactly what workers observe when the switch program dies under a
// live crossbar. Chaos tests drive it; revival needs no state reset —
// the probe fence wipes the pool under a fresh generation before any
// worker fails back.
func (a *Aggregator) SetDown(down bool) { a.down.Store(down) }

// write sends the shard's marshalled result datagram, consulting the
// fault injector.
func (a *Aggregator) write(sh *aggShard, peer netip.AddrPort) {
	out := sh.wire
	writes := 1
	if a.inj != nil {
		switch a.inj.Judge() {
		case faults.Drop:
			return
		case faults.Corrupt:
			// The multicast loop shares sh.wire across peers; mangle a
			// shard-local copy.
			sh.mangled = append(sh.mangled[:0], out...)
			a.inj.Mangle(sh.mangled)
			out = sh.mangled
		case faults.Duplicate:
			writes = 2
		}
	}
	for i := 0; i < writes; i++ {
		if _, err := a.conn.WriteToUDPAddrPort(out, peer); err != nil {
			a.sendErrs.Inc()
			continue
		}
		a.sent.Inc()
	}
}

// Reset clears the aggregation pools and forgets worker addresses,
// preparing the aggregator for a restarted job (§3.2: worker failures
// are handled by the framework restarting the job). In-flight
// datagrams from the dead job are rejected by the fresh state.
func (a *Aggregator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sw.Reset()
	for i := range a.peers {
		a.peers[i].Store(nil)
	}
	a.adopt = nil
	a.adoptGen, a.adoptFrontier, a.adoptDone = 0, 0, false
	if a.lv != nil {
		// Back to "never seen" for every worker, so a host that does
		// not rejoin the restarted job is simply ignored rather than
		// suspected.
		a.lv.tracker.Reset()
		for i := range a.lv.reported {
			a.lv.reported[i] = false
			a.lv.leavePend[i] = false
			a.lv.leaveOff[i] = 0
			a.lv.maxOff[i].Store(0)
		}
		a.lv.fence = nil
		a.lv.leaveArmed.Store(false)
		a.lv.recovering = false
		a.lv.resumeReady.Store(false)
		a.lv.frontier.Store(0)
	}
}
