package transport

import (
	"errors"
	"fmt"
	"net"
	"time"

	"switchml/internal/packet"
	"switchml/internal/telemetry"
)

// Elastic membership: the worker-side half of graceful join and leave
// (the aggregator half lives in elastic.go).
//
// An incumbent's whole obligation is the fence hold: when a Ver=1
// KindReconfig announces a membership change, the client finishes its
// in-flight tensor as usual, and the next AllReduce call first parks
// at the tensor boundary — confirming the boundary offset with a
// Ver=1 KindReport at its RTO, serving model-state segments to the
// joiner over the fallback mesh if a state provider is installed —
// until the commit's KindResume releases it under the new generation.
// All of that happens inside AllReduceInt32; callers see nothing but
// a slightly longer step.
//
// A leaver calls Drain between AllReduce calls: the drain boundary
// (the worker's stream frontier) rides on a KindLeave that is
// retransmitted until the aggregator echoes it, after which the
// client is done — every later AllReduce fails fast with ErrDrained.
//
// A joiner calls JoinCluster before its first AllReduce: KindJoin is
// retransmitted until the fence opens, model state is fetched from an
// incumbent over the mesh (when one is configured), readiness is
// confirmed, and the commit's KindResume seeds the stream cursor at
// the boundary every incumbent is holding at.

// ErrDrained is returned by AllReduceInt32 after a successful Drain:
// the worker has left the job and its collectives are over.
var ErrDrained = errors.New("transport: worker drained from job")

// stateSegElems is the mesh state-transfer segment size in elements;
// well under the 64 KiB datagram ceiling at 4 bytes per element.
const stateSegElems = 1024

// SetStateProvider installs the model-state snapshot callback served
// to joiners over the fallback mesh while this client holds at a
// membership fence. The callback runs on the AllReduce goroutine at a
// tensor boundary, so the snapshot is step-aligned with the boundary
// the joiner enters at.
func (c *Client) SetStateProvider(f func() []int32) { c.stateProvider = f }

// Frontier returns the worker's stream frontier — after JoinCluster,
// the global offset the worker was admitted at, from which the caller
// can derive the step to resume training from.
func (c *Client) Frontier() uint64 { return c.worker.FrontierOff() }

// Drained reports whether this client has completed a graceful leave.
func (c *Client) Drained() bool { return c.drained }

// armFence records a Ver=1 reconfigure directive: a membership change
// is proposed, and this worker must hold at its next tensor boundary.
// Being absent from the future membership means eviction, exactly as
// with the Ver=0 directive.
func (c *Client) armFence(p *packet.Packet) error {
	member := false
	for _, w := range p.Vector {
		if w == int32(c.cfg.Worker.ID) {
			member = true
			break
		}
	}
	if !member {
		return fmt.Errorf("transport: worker %d evicted from job (generation %d)",
			c.cfg.Worker.ID, p.JobID)
	}
	c.fenceArmed = true
	c.fenceGen = p.JobID
	return nil
}

// sendFenceConfirm emits the Ver=1 boundary confirmation.
func (c *Client) sendFenceConfirm(gen uint16, off uint64) error {
	pk := packet.NewControl(packet.KindReport, c.cfg.Worker.ID, gen, off, nil)
	pk.Ver = 1
	c.cbuf = pk.AppendMarshal(c.cbuf[:0])
	if _, err := c.conn.Write(c.cbuf); err != nil {
		if c.fb != nil && deadDestination(err) {
			return nil
		}
		return fmt.Errorf("transport: send: %w", err)
	}
	c.sent.Inc()
	return nil
}

// holdAtFence parks the worker at its tensor boundary until the
// membership fence commits (or is superseded by a §5.6 recovery).
// It returns reopened=true when a recovery resumed the previous
// tensor below the boundary: the caller must drive that tensor back
// to completion before starting the next one. An aggregator that goes
// silent mid-fence abandons the hold and lets the normal path's
// silence detector deliver its verdict.
func (c *Client) holdAtFence(deadline time.Time) (reopened bool, err error) {
	hold := c.worker.FrontierOff()
	var state []int32
	if c.stateProvider != nil && c.fb != nil {
		state = c.stateProvider()
	}
	var lastConfirm time.Time
	for {
		if time.Now().After(deadline) {
			return false, fmt.Errorf("transport: membership fence (generation %d) timed out holding at offset %d", c.fenceGen, hold)
		}
		if silence := time.Since(c.lastProgress); silence >= c.silenceAfter() {
			c.fenceArmed = false
			return false, nil
		}
		if time.Since(lastConfirm) >= c.cfg.RTO {
			if err := c.sendFenceConfirm(c.fenceGen, hold); err != nil {
				return false, err
			}
			lastConfirm = time.Now()
		}
		if state != nil {
			c.serveState(state)
		}
		if err := c.conn.SetReadDeadline(time.Now().Add(c.cfg.RTO / 2)); err != nil {
			return false, err
		}
		n, err := c.conn.Read(c.rbuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			if c.fb != nil {
				time.Sleep(c.cfg.RTO / 8)
				continue
			}
			return false, err
		}
		c.recvd.Inc()
		if packet.UnmarshalInto(&c.rp, c.rbuf[:n]) != nil {
			c.corrupt.Inc()
			continue
		}
		c.lastProgress = time.Now()
		//switchml:dispatch
		switch c.rp.Kind {
		case packet.KindResume:
			p := &c.rp
			if p.JobID == c.epoch {
				continue // repeated directive for an adopted generation
			}
			if p.Off == hold {
				// The fence committed (or a recovery landed exactly on
				// our boundary): adopt the generation with per-slot
				// versions reset to match the wiped pool.
				c.worker.Resume(p.JobID, c.worker.ChunkCount())
				c.adoptEpoch(p.JobID)
				c.fenceArmed = false
				return false, nil
			}
			// A §5.6 recovery superseded the fence with a frontier
			// below our boundary: some survivor still needs chunks of
			// the previous tensor re-aggregated, so re-open it and let
			// the caller drive it back to completion.
			pkts, rerr := c.worker.ResumeAt(p.JobID, p.Off)
			if rerr != nil {
				return false, fmt.Errorf("transport: fence superseded: %w", rerr)
			}
			c.adoptEpoch(p.JobID)
			c.fenceArmed = false
			c.trace(telemetry.EvResume, -1)
			for _, q := range pkts {
				serr := c.send(q, false)
				packet.PutPacket(q)
				if serr != nil {
					return false, serr
				}
			}
			return true, nil
		case packet.KindReconfig:
			p := &c.rp
			if p.Ver == 1 {
				// Fence rebroadcast (possibly a fresh fence after an
				// abort): refresh the proposed generation.
				if err := c.armFence(p); err != nil {
					return false, err
				}
				lastConfirm = time.Time{} // confirm the new generation now
				continue
			}
			// §5.6 recovery mid-fence: the fence is aborted aggregator-
			// side. Report our frontier (the boundary) and keep holding
			// for the recovery's resume, which releases us above.
			member := false
			for _, w := range p.Vector {
				if w == int32(c.cfg.Worker.ID) {
					member = true
					break
				}
			}
			if !member {
				return false, fmt.Errorf("transport: worker %d evicted from job (generation %d)",
					c.cfg.Worker.ID, p.JobID)
			}
			if err := c.sendControl(packet.KindReport, p.JobID, hold, nil); err != nil {
				return false, err
			}
		default:
			// Stale results from the finished tensor; count the drops
			// so a wedged fence is diagnosable from the counters.
			c.unexpected.Inc()
		}
	}
}

// meshBuf returns the pooled 64 KiB mesh receive buffer, allocated on
// first use. It is owned by whichever single goroutine drives the
// client (the client is documented as not safe for concurrent use);
// see fetchState for the ownership note versus c.rbuf.
func (c *Client) meshBuf() []byte {
	if c.mbuf == nil {
		c.mbuf = make([]byte, 65536)
	}
	return c.mbuf
}

// adoptEpoch installs a new job generation and resets the
// retransmission state, as after any resume.
func (c *Client) adoptEpoch(gen uint16) {
	c.epoch = gen
	c.gEpoch.Set(int64(gen))
	for i := range c.backoff {
		c.backoff[i] = 0
		c.retxed[i] = false
	}
}

// Drain announces a graceful leave and returns once the aggregator
// acknowledges it. Call it between AllReduce calls (the client is not
// safe for concurrent use): the announcement carries the worker's
// stream frontier as the drain boundary, the aggregator excuses the
// worker's silence from the failure detector immediately, and the
// membership shrinks once every other worker has passed the boundary.
// After a successful Drain every AllReduceInt32 returns ErrDrained.
func (c *Client) Drain() error {
	if c.drained {
		return nil
	}
	off := c.worker.FrontierOff()
	c.trace(telemetry.EvDrainStart, -1)
	const tries = 64
	for try := 0; try < tries; try++ {
		if err := c.sendControl(packet.KindLeave, c.epoch, off, nil); err != nil {
			return err
		}
		if err := c.conn.SetReadDeadline(time.Now().Add(c.cfg.RTO)); err != nil {
			return err
		}
		for {
			n, err := c.conn.Read(c.rbuf)
			if err != nil {
				break // deadline (or transient): re-announce
			}
			c.recvd.Inc()
			if packet.UnmarshalInto(&c.rp, c.rbuf[:n]) != nil {
				c.corrupt.Inc()
				continue
			}
			if c.rp.Kind == packet.KindLeave {
				c.drained = true
				c.trace(telemetry.EvWorkerLeave, -1)
				return nil
			}
		}
	}
	return fmt.Errorf("transport: drain announcement unacknowledged after %d attempts", tries)
}

// JoinCluster runs the graceful-join handshake: solicit admission,
// fetch model state from an incumbent over the fallback mesh (when
// one is configured and an incumbent serves it), confirm readiness,
// and seed the stream cursor at the boundary the fence committed.
// It returns the fetched state (nil without a mesh) — the caller
// installs it and derives the resume step from Frontier. Call it
// before the first AllReduce.
func (c *Client) JoinCluster() ([]int32, error) {
	deadline := time.Now().Add(c.cfg.Timeout)
	var state []int32
	fetched := false
	admitted := false
	confirms := 0
	var gen uint16
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: join timed out after %v", c.cfg.Timeout)
		}
		if admitted {
			// A fence that went quiet was aborted by a crash recovery;
			// go back to soliciting and get a fresh one.
			if confirms++; confirms > 16 {
				admitted = false
			}
		}
		if !admitted {
			if err := c.sendControl(packet.KindJoin, c.cfg.Worker.JobID, 0, nil); err != nil {
				return nil, err
			}
		} else if err := c.sendFenceConfirm(gen, 0); err != nil {
			return nil, err
		}
		if err := c.conn.SetReadDeadline(time.Now().Add(c.cfg.RTO)); err != nil {
			return nil, err
		}
		n, err := c.conn.Read(c.rbuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			if c.fb != nil {
				time.Sleep(c.cfg.RTO / 8)
				continue
			}
			return nil, err
		}
		c.recvd.Inc()
		if packet.UnmarshalInto(&c.rp, c.rbuf[:n]) != nil {
			c.corrupt.Inc()
			continue
		}
		//switchml:dispatch
		switch c.rp.Kind {
		case packet.KindReconfig:
			p := &c.rp
			if p.Ver != 1 {
				continue
			}
			member := false
			for _, w := range p.Vector {
				if w == int32(c.cfg.Worker.ID) {
					member = true
					break
				}
			}
			if !member {
				continue // a fence for someone else; keep soliciting
			}
			gen = p.JobID
			confirms = 0
			if !fetched {
				fetched = true
				if c.fb != nil {
					// Best effort: an incumbent without a state
					// provider just never answers, and the join
					// proceeds stateless.
					state, _ = c.fetchState(deadline)
				}
			}
			admitted = true
		case packet.KindResume:
			p := &c.rp
			c.worker.JoinAt(p.JobID, p.Off)
			c.adoptEpoch(p.JobID)
			c.gFrontier.Set(int64(p.Off))
			c.trace(telemetry.EvWorkerJoin, -1)
			return state, nil
		default:
			// The joiner's socket sees ordinary job traffic (results,
			// heartbeat acks) until the fence commits; count it rather
			// than silently spinning.
			c.unexpected.Inc()
		}
	}
}

// statePeer picks the incumbent to fetch model state from: the
// lowest-id mesh peer that is not this worker.
func (c *Client) statePeer() *net.UDPAddr {
	for i, ap := range c.fb.peers {
		if ap != nil && i != int(c.cfg.Worker.ID) {
			return ap
		}
	}
	return nil
}

// fetchState pulls the model snapshot from an incumbent holding at
// the fence, one segment per request (requester-driven ARQ: lost
// requests and replies are both repaired by re-requesting). The first
// reply carries the total element count.
func (c *Client) fetchState(deadline time.Time) ([]int32, error) {
	peer := c.statePeer()
	if peer == nil {
		return nil, nil
	}
	var state []int32
	total := -1
	off := 0
	// The mesh receive buffer and decoded packet are the client's
	// pooled c.mbuf/c.mp rather than per-call allocations: fetchState
	// (the joiner, before its first AllReduce) and serveState (an
	// incumbent, inside its fence hold) are the only users, both on
	// the single goroutine driving the client — they can never run
	// concurrently on one client, so sharing the pool is safe. c.rbuf
	// stays distinct: it belongs to the aggregator-socket read path,
	// which a fence hold interleaves with mesh serving.
	buf := c.meshBuf()
	p := &c.mp
	for total < 0 || off < total {
		got := false
		for try := 0; try < 16 && !got; try++ {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("transport: state fetch timed out at offset %d", off)
			}
			req := packet.NewControl(packet.KindStateReq, c.cfg.Worker.ID, 0, uint64(off), nil)
			if _, err := c.fb.mesh.WriteToUDP(req.Marshal(), peer); err != nil {
				c.sendErrs.Inc()
				continue
			}
			if err := c.fb.mesh.SetReadDeadline(time.Now().Add(c.cfg.RTO)); err != nil {
				return nil, err
			}
			for {
				n, _, err := c.fb.mesh.ReadFromUDP(buf)
				if err != nil {
					break
				}
				if packet.UnmarshalInto(p, buf[:n]) != nil {
					continue
				}
				if p.Kind != packet.KindStateData || p.Off != uint64(off) {
					continue
				}
				if total < 0 {
					total = int(p.Idx)
					state = make([]int32, 0, total)
				}
				state = append(state, p.Vector...)
				off += len(p.Vector)
				got = true
				break
			}
		}
		if !got {
			return nil, fmt.Errorf("transport: state fetch got no reply at offset %d", off)
		}
		if total == 0 {
			break
		}
	}
	return state, nil
}

// serveState answers pending mesh state requests from the joiner with
// segments of the boundary-aligned snapshot. Called from the fence
// hold loop; the short poll deadline keeps the hold responsive.
func (c *Client) serveState(state []int32) {
	if err := c.fb.mesh.SetReadDeadline(time.Now().Add(time.Millisecond)); err != nil {
		return
	}
	c.meshBuf()
	for {
		n, src, err := c.fb.mesh.ReadFromUDP(c.mbuf)
		if err != nil {
			return
		}
		if packet.UnmarshalInto(&c.mp, c.mbuf[:n]) != nil {
			continue
		}
		if c.mp.Kind != packet.KindStateReq {
			continue // stale mesh-ring traffic
		}
		off := int(c.mp.Off)
		if off < 0 || off > len(state) {
			continue
		}
		seg := stateSegElems
		if off+seg > len(state) {
			seg = len(state) - off
		}
		out := packet.Packet{
			Kind:     packet.KindStateData,
			WorkerID: c.cfg.Worker.ID,
			JobID:    c.mp.JobID,
			Idx:      uint32(len(state)),
			Off:      uint64(off),
			Vector:   state[off : off+seg],
		}
		if _, err := c.fb.mesh.WriteToUDP(out.Marshal(), src); err != nil {
			c.sendErrs.Inc()
		}
	}
}
