package transport

import (
	"net"
	"testing"
	"time"

	"switchml/internal/core"
	"switchml/internal/packet"
)

// TestAggregatorCountsUnexpectedKinds is the regression test for the
// serve loops' dispatch defaults: a well-formed datagram whose kind
// workers never originate (a result, here) must not vanish silently —
// the aggregator drops it and increments udp_unexpected_kind_total.
func TestAggregatorCountsUnexpectedKinds(t *testing.T) {
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: 1, PoolSize: 2, SlotElems: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	conn, err := net.DialUDP("udp", nil, agg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	bogus := packet.Packet{Kind: packet.KindResult, WorkerID: 0, Idx: 0, Vector: []int32{1, 2, 3, 4}}
	wire := bogus.Marshal()
	ctr := agg.Registry().Counter("udp_unexpected_kind_total", "role", "aggregator")
	deadline := time.Now().Add(5 * time.Second)
	for ctr.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unexpected-kind counter never incremented for a KindResult datagram")
		}
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClientCountsUnexpectedKind pins the worker-side dispatch
// default: kinds an aggregator never sends (updates, reports,
// heartbeats) are dropped and counted rather than silently ignored.
func TestClientCountsUnexpectedKind(t *testing.T) {
	agg, err := NewAggregator(AggregatorConfig{
		Addr:   "127.0.0.1:0",
		Switch: core.SwitchConfig{Workers: 1, PoolSize: 2, SlotElems: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	c, err := NewClient(ClientConfig{
		Aggregator: agg.Addr().String(),
		Worker:     core.WorkerConfig{ID: 0, Workers: 1, PoolSize: 2, SlotElems: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, k := range []packet.Kind{packet.KindUpdate, packet.KindReport, packet.KindHeartbeat} {
		done, err := c.handleIncoming(&packet.Packet{Kind: k})
		if done || err != nil {
			t.Fatalf("handleIncoming(%v) = %v, %v; want false, nil", k, done, err)
		}
	}
	ctr := c.Registry().Counter("udp_unexpected_kind_total", "role", "worker", "worker", "0")
	if got := ctr.Value(); got != 3 {
		t.Fatalf("unexpected-kind counter = %d after 3 undispatched kinds, want 3", got)
	}
}
