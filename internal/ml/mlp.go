package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a small multi-layer perceptron with one ReLU hidden layer
// (or, with Hidden == 0, a softmax linear classifier), trained with
// cross-entropy loss. It is deliberately simple: the quantization
// study needs a genuine SGD process whose gradients flow through the
// integer aggregation path, not a state-of-the-art vision model.
type MLP struct {
	in, hidden, out int
	// params holds all weights and biases flattened into one vector,
	// the "model x ∈ R^d" of §2.1: [W1 (in*h) | b1 (h) | W2 (h*out) |
	// b2 (out)], or [W (in*out) | b (out)] when hidden == 0.
	params []float32
}

// NewMLP builds a model with Xavier-style initialization from the
// given seed.
func NewMLP(seed int64, in, hidden, out int) (*MLP, error) {
	if in <= 0 || out < 2 || hidden < 0 {
		return nil, fmt.Errorf("ml: bad MLP shape (%d, %d, %d)", in, hidden, out)
	}
	m := &MLP{in: in, hidden: hidden, out: out}
	m.params = make([]float32, m.ParamCount())
	rng := rand.New(rand.NewSource(seed))
	if hidden > 0 {
		scale1 := float32(math.Sqrt(2 / float64(in)))
		for i := 0; i < in*hidden; i++ {
			m.params[i] = float32(rng.NormFloat64()) * scale1
		}
		scale2 := float32(math.Sqrt(2 / float64(hidden)))
		w2 := m.w2Off()
		for i := 0; i < hidden*out; i++ {
			m.params[w2+i] = float32(rng.NormFloat64()) * scale2
		}
	} else {
		scale := float32(math.Sqrt(1 / float64(in)))
		for i := 0; i < in*out; i++ {
			m.params[i] = float32(rng.NormFloat64()) * scale
		}
	}
	return m, nil
}

// ParamCount returns d, the dimensionality of the model vector.
func (m *MLP) ParamCount() int {
	if m.hidden == 0 {
		return m.in*m.out + m.out
	}
	return m.in*m.hidden + m.hidden + m.hidden*m.out + m.out
}

// Params exposes the flattened parameter vector; the trainer adds
// aggregated updates to it in place.
func (m *MLP) Params() []float32 { return m.params }

// Clone returns an independent copy of the model.
func (m *MLP) Clone() *MLP {
	c := *m
	c.params = append([]float32(nil), m.params...)
	return &c
}

func (m *MLP) b1Off() int { return m.in * m.hidden }
func (m *MLP) w2Off() int { return m.in*m.hidden + m.hidden }
func (m *MLP) b2Off() int { return m.in*m.hidden + m.hidden + m.hidden*m.out }

// forward computes the logits for one example and, if h is non-nil,
// stores hidden activations into it.
func (m *MLP) forward(x []float32, h []float32) []float32 {
	logits := make([]float32, m.out)
	if m.hidden == 0 {
		b := m.in * m.out
		for o := 0; o < m.out; o++ {
			sum := m.params[b+o]
			row := o * m.in
			for i, xi := range x {
				sum += m.params[row+i] * xi
			}
			logits[o] = sum
		}
		return logits
	}
	b1, w2, b2 := m.b1Off(), m.w2Off(), m.b2Off()
	for j := 0; j < m.hidden; j++ {
		sum := m.params[b1+j]
		row := j * m.in
		for i, xi := range x {
			sum += m.params[row+i] * xi
		}
		if sum < 0 {
			sum = 0
		}
		h[j] = sum
	}
	for o := 0; o < m.out; o++ {
		sum := m.params[b2+o]
		row := w2 + o*m.hidden
		for j := 0; j < m.hidden; j++ {
			sum += m.params[row+j] * h[j]
		}
		logits[o] = sum
	}
	return logits
}

// Predict returns the argmax class for an example.
func (m *MLP) Predict(x []float32) int {
	var h []float32
	if m.hidden > 0 {
		h = make([]float32, m.hidden)
	}
	logits := m.forward(x, h)
	best := 0
	for o := 1; o < len(logits); o++ {
		if logits[o] > logits[best] {
			best = o
		}
	}
	return best
}

// softmax converts logits to probabilities in place, numerically
// stably.
func softmax(logits []float32) {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - max))
		logits[i] = float32(e)
		sum += e
	}
	for i := range logits {
		logits[i] = float32(float64(logits[i]) / sum)
	}
}

// Gradient computes the average negative cross-entropy gradient over
// a mini-batch, writing it into grad (length ParamCount). It returns
// the mean loss. The returned direction is the *descent* update
// direction scaled by -1 (i.e. grad holds dL/dθ; the trainer applies
// θ ← θ − lr·grad).
func (m *MLP) Gradient(grad []float32, xs [][]float32, ys []int) (loss float64) {
	if len(grad) != m.ParamCount() {
		panic(fmt.Sprintf("ml: gradient buffer %d != param count %d", len(grad), m.ParamCount()))
	}
	for i := range grad {
		grad[i] = 0
	}
	var h []float32
	if m.hidden > 0 {
		h = make([]float32, m.hidden)
	}
	inv := float32(1) / float32(len(xs))
	for e, x := range xs {
		logits := m.forward(x, h)
		softmax(logits)
		p := float64(logits[ys[e]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		// dL/dlogit = p - onehot(y).
		logits[ys[e]] -= 1
		if m.hidden == 0 {
			b := m.in * m.out
			for o := 0; o < m.out; o++ {
				g := logits[o] * inv
				row := o * m.in
				for i, xi := range x {
					grad[row+i] += g * xi
				}
				grad[b+o] += g
			}
			continue
		}
		b1, w2, b2 := m.b1Off(), m.w2Off(), m.b2Off()
		// Output layer.
		for o := 0; o < m.out; o++ {
			g := logits[o] * inv
			row := w2 + o*m.hidden
			for j := 0; j < m.hidden; j++ {
				grad[row+j] += g * h[j]
			}
			grad[b2+o] += g
		}
		// Hidden layer: dL/dh_j = sum_o dlogit_o * W2[o,j], gated by
		// ReLU.
		for j := 0; j < m.hidden; j++ {
			if h[j] <= 0 {
				continue
			}
			var dh float32
			for o := 0; o < m.out; o++ {
				dh += logits[o] * m.params[w2+o*m.hidden+j]
			}
			dh *= inv
			row := j * m.in
			for i, xi := range x {
				grad[row+i] += dh * xi
			}
			grad[b1+j] += dh
		}
	}
	return loss / float64(len(xs))
}

// ApplyUpdate performs θ ← θ − lr·update.
func (m *MLP) ApplyUpdate(update []float32, lr float32) {
	for i, g := range update {
		m.params[i] -= lr * g
	}
}
