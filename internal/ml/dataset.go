package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a labelled classification dataset held in memory.
type Dataset struct {
	// X holds one row of Features values per example.
	X [][]float32
	// Y holds the class label of each example.
	Y []int
	// Classes is the number of distinct labels.
	Classes int
	// Features is the dimensionality of each example.
	Features int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Split partitions the dataset into train and validation parts; frac
// is the training fraction.
func (d *Dataset) Split(frac float64) (train, valid *Dataset) {
	cut := int(float64(d.Len()) * frac)
	train = &Dataset{X: d.X[:cut], Y: d.Y[:cut], Classes: d.Classes, Features: d.Features}
	valid = &Dataset{X: d.X[cut:], Y: d.Y[cut:], Classes: d.Classes, Features: d.Features}
	return train, valid
}

// Shard returns worker i's slice of the dataset under a round-robin
// partition, the data-parallel split of §2.1.
func (d *Dataset) Shard(i, n int) *Dataset {
	s := &Dataset{Classes: d.Classes, Features: d.Features}
	for j := i; j < d.Len(); j += n {
		s.X = append(s.X, d.X[j])
		s.Y = append(s.Y, d.Y[j])
	}
	return s
}

// GaussianMixture synthesizes a classification problem: classes are
// isotropic Gaussian clusters placed on a scaled hypercube, shuffled
// deterministically. It stands in for the paper's image datasets in
// the quantization study (Appendix C): what matters there is a real
// iterative SGD process whose gradients span a realistic dynamic
// range, not the vision task itself.
func GaussianMixture(seed int64, examples, features, classes int, noise float64) (*Dataset, error) {
	if examples <= 0 || features <= 0 || classes < 2 {
		return nil, fmt.Errorf("ml: bad mixture shape (%d examples, %d features, %d classes)",
			examples, features, classes)
	}
	if classes > 1<<features {
		return nil, fmt.Errorf("ml: %d classes need more than %d features", classes, features)
	}
	rng := rand.New(rand.NewSource(seed))
	// Class centers: distinct hypercube corners scaled to radius 2.
	centers := make([][]float32, classes)
	for c := range centers {
		centers[c] = make([]float32, features)
		for f := 0; f < features; f++ {
			if c>>(f%30)&1 == 1 {
				centers[c][f] = 2
			} else {
				centers[c][f] = -2
			}
		}
		// Random rotation-ish jitter so corners are not axis-aligned.
		for f := range centers[c] {
			centers[c][f] += float32(rng.NormFloat64() * 0.5)
		}
	}
	d := &Dataset{Classes: classes, Features: features}
	for i := 0; i < examples; i++ {
		c := rng.Intn(classes)
		x := make([]float32, features)
		for f := range x {
			x[f] = centers[c][f] + float32(rng.NormFloat64()*noise)
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, c)
	}
	return d, nil
}

// Accuracy evaluates a classifier function on the dataset.
func (d *Dataset) Accuracy(predict func(x []float32) int) float64 {
	if d.Len() == 0 {
		return math.NaN()
	}
	correct := 0
	for i, x := range d.X {
		if predict(x) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}
