package ml

import (
	"fmt"
	"math/rand"

	"switchml/internal/quant"
)

// Aggregator combines per-worker gradient vectors into one summed
// vector, the Σ of §2.1. Implementations range from exact float
// addition (the reference) to the full quantize → integer-aggregate →
// dequantize path through the switch state machines.
type Aggregator interface {
	// Aggregate sums grads[0..n-1] elementwise into out. All slices
	// have equal length.
	Aggregate(out []float32, grads [][]float32) error
}

// ExactAggregator sums gradients in float64 and is the reference the
// quantized paths are compared against.
type ExactAggregator struct{}

// Aggregate implements Aggregator.
func (ExactAggregator) Aggregate(out []float32, grads [][]float32) error {
	for i := range out {
		var s float64
		for _, g := range grads {
			s += float64(g[i])
		}
		out[i] = float32(s)
	}
	return nil
}

// FixedPointAggregator runs the paper's quantization scheme
// (Appendix C) over plain integer addition: each worker's gradient is
// scaled by f and rounded to int32, the integers are summed exactly
// (as the switch does), and the sum is scaled back. The IntSum hook
// lets callers route the integer addition through the real switch
// code path.
type FixedPointAggregator struct {
	Fixed *quant.FixedPoint
	// IntSum, when non-nil, performs the integer aggregation (e.g.
	// through core.Switch); nil selects in-process addition.
	IntSum func(out []int32, ints [][]int32) error
	// Saturations accumulates how many elements clamped during
	// quantization, a diagnostic for an over-large scaling factor.
	Saturations int
}

// Aggregate implements Aggregator.
func (a *FixedPointAggregator) Aggregate(out []float32, grads [][]float32) error {
	d := len(out)
	ints := make([][]int32, len(grads))
	for w, g := range grads {
		ints[w] = make([]int32, d)
		a.Saturations += a.Fixed.Quantize(ints[w], g)
	}
	sum := make([]int32, d)
	if a.IntSum != nil {
		if err := a.IntSum(sum, ints); err != nil {
			return err
		}
	} else {
		for _, iv := range ints {
			for i, v := range iv {
				sum[i] += v
			}
		}
	}
	a.Fixed.Dequantize(out, sum)
	return nil
}

// TrainerConfig describes a distributed synchronous-SGD run on
// synthetic data, the Appendix C experimental setup scaled to
// laptop size.
type TrainerConfig struct {
	// Workers is n.
	Workers int
	// Model shape.
	Features, Hidden, Classes int
	// BatchPerWorker is each worker's mini-batch size per iteration.
	BatchPerWorker int
	// LR is the learning rate applied to the averaged update.
	LR float32
	// Seed drives initialization and batch sampling.
	Seed int64
}

func (c *TrainerConfig) fillDefaults() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Features == 0 {
		c.Features = 16
	}
	if c.Classes == 0 {
		c.Classes = 4
	}
	if c.BatchPerWorker == 0 {
		c.BatchPerWorker = 16
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
}

// Trainer runs data-parallel synchronous SGD: per iteration every
// worker computes a gradient on its shard, the Aggregator sums them,
// and each (replicated) model applies the averaged update — the
// x_{t+1} = x_t + Σ Δ(x_t, D_i) loop of §2.1.
type Trainer struct {
	cfg    TrainerConfig
	model  *MLP
	shards []*Dataset
	rngs   []*rand.Rand
	grads  [][]float32
	sum    []float32
	agg    Aggregator
	// MaxAbsGrad tracks the largest gradient magnitude seen, the
	// profiling input for scaling-factor selection (Appendix C).
	MaxAbsGrad float64
	iterations int
}

// NewTrainer shards train across the workers and prepares the
// replicated model.
func NewTrainer(cfg TrainerConfig, train *Dataset, agg Aggregator) (*Trainer, error) {
	cfg.fillDefaults()
	if agg == nil {
		return nil, fmt.Errorf("ml: nil aggregator")
	}
	if train.Features != cfg.Features || train.Classes != cfg.Classes {
		return nil, fmt.Errorf("ml: dataset shape (%d feat, %d cls) mismatches config (%d, %d)",
			train.Features, train.Classes, cfg.Features, cfg.Classes)
	}
	model, err := NewMLP(cfg.Seed, cfg.Features, cfg.Hidden, cfg.Classes)
	if err != nil {
		return nil, err
	}
	t := &Trainer{cfg: cfg, model: model, agg: agg, sum: make([]float32, model.ParamCount())}
	for i := 0; i < cfg.Workers; i++ {
		sh := train.Shard(i, cfg.Workers)
		if sh.Len() < cfg.BatchPerWorker {
			return nil, fmt.Errorf("ml: worker %d shard has %d examples < batch %d", i, sh.Len(), cfg.BatchPerWorker)
		}
		t.shards = append(t.shards, sh)
		t.rngs = append(t.rngs, rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
		t.grads = append(t.grads, make([]float32, model.ParamCount()))
	}
	return t, nil
}

// Model returns the (replicated) model.
func (t *Trainer) Model() *MLP { return t.model }

// Iterations returns how many synchronous steps have run.
func (t *Trainer) Iterations() int { return t.iterations }

// Step runs one synchronous iteration and returns the mean training
// loss across workers.
func (t *Trainer) Step() (float64, error) {
	var loss float64
	for w, shard := range t.shards {
		xs := make([][]float32, t.cfg.BatchPerWorker)
		ys := make([]int, t.cfg.BatchPerWorker)
		for b := range xs {
			j := t.rngs[w].Intn(shard.Len())
			xs[b], ys[b] = shard.X[j], shard.Y[j]
		}
		loss += t.model.Gradient(t.grads[w], xs, ys)
		for _, g := range t.grads[w] {
			a := float64(g)
			if a < 0 {
				a = -a
			}
			if a > t.MaxAbsGrad {
				t.MaxAbsGrad = a
			}
		}
	}
	if err := t.agg.Aggregate(t.sum, t.grads); err != nil {
		return 0, err
	}
	// Average: the switch sums; the division by n happens at end
	// hosts (§3.3).
	t.model.ApplyUpdate(t.sum, t.cfg.LR/float32(t.cfg.Workers))
	t.iterations++
	return loss / float64(t.cfg.Workers), nil
}

// Run performs iters steps and returns the final validation accuracy.
func (t *Trainer) Run(iters int, valid *Dataset) (float64, error) {
	for i := 0; i < iters; i++ {
		if _, err := t.Step(); err != nil {
			return 0, err
		}
	}
	return valid.Accuracy(t.model.Predict), nil
}
