package ml

import (
	"math"
	"testing"

	"switchml/internal/quant"
)

func mixture(t *testing.T) (train, valid *Dataset) {
	t.Helper()
	ds, err := GaussianMixture(42, 4000, 16, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Split(0.8)
}

func TestGaussianMixtureShape(t *testing.T) {
	ds, err := GaussianMixture(1, 100, 8, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 100 || ds.Features != 8 || ds.Classes != 3 {
		t.Errorf("shape = (%d, %d, %d)", ds.Len(), ds.Features, ds.Classes)
	}
	for i, y := range ds.Y {
		if y < 0 || y >= 3 {
			t.Fatalf("label %d out of range at %d", y, i)
		}
	}
	if _, err := GaussianMixture(1, 0, 8, 3, 0.5); err == nil {
		t.Error("zero examples accepted")
	}
	if _, err := GaussianMixture(1, 10, 2, 100, 0.5); err == nil {
		t.Error("too many classes accepted")
	}
}

func TestDatasetShardRoundRobin(t *testing.T) {
	ds, _ := GaussianMixture(2, 10, 4, 2, 0.5)
	a, b := ds.Shard(0, 2), ds.Shard(1, 2)
	if a.Len() != 5 || b.Len() != 5 {
		t.Fatalf("shard sizes %d, %d", a.Len(), b.Len())
	}
	if &a.X[0][0] != &ds.X[0][0] || &b.X[0][0] != &ds.X[1][0] {
		t.Error("shards don't alias original data round-robin")
	}
}

func TestMLPGradientDescentConverges(t *testing.T) {
	// Exact aggregation: a linear classifier must learn the mixture
	// to high accuracy.
	train, valid := mixture(t)
	tr, err := NewTrainer(TrainerConfig{Workers: 4, Features: 16, Classes: 4, Seed: 1},
		train, ExactAggregator{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tr.Run(300, valid)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("exact-aggregation accuracy = %.3f, want >= 0.95", acc)
	}
	if tr.MaxAbsGrad <= 0 {
		t.Error("gradient profiling recorded nothing")
	}
}

func TestMLPHiddenLayerConverges(t *testing.T) {
	train, valid := mixture(t)
	tr, err := NewTrainer(TrainerConfig{Workers: 2, Features: 16, Hidden: 32, Classes: 4, Seed: 2, LR: 0.05},
		train, ExactAggregator{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tr.Run(400, valid)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("MLP accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestMLPGradientNumerical(t *testing.T) {
	// Finite-difference check of the analytic gradient.
	m, err := NewMLP(3, 5, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float32{{0.5, -1, 2, 0.1, -0.3}, {1, 1, -1, 0.2, 0}}
	ys := []int{0, 2}
	grad := make([]float32, m.ParamCount())
	m.Gradient(grad, xs, ys)
	loss := func(mm *MLP) float64 {
		g := make([]float32, mm.ParamCount())
		return mm.Gradient(g, xs, ys)
	}
	const eps = 1e-3
	for _, i := range []int{0, 7, 20, m.ParamCount() - 1, m.ParamCount() - 5} {
		up := m.Clone()
		up.Params()[i] += eps
		down := m.Clone()
		down.Params()[i] -= eps
		numeric := (loss(up) - loss(down)) / (2 * eps)
		if diff := math.Abs(numeric - float64(grad[i])); diff > 2e-2*(1+math.Abs(numeric)) {
			t.Errorf("param %d: analytic %v vs numeric %v", i, grad[i], numeric)
		}
	}
}

func TestQuantizedTrainingMatchesExact(t *testing.T) {
	// Appendix C's claim: with a well-chosen f, quantized training
	// reaches the same accuracy as exact training.
	train, valid := mixture(t)
	exact, err := NewTrainer(TrainerConfig{Workers: 4, Features: 16, Classes: 4, Seed: 3},
		train, ExactAggregator{})
	if err != nil {
		t.Fatal(err)
	}
	exactAcc, err := exact.Run(300, valid)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := quant.NewFixedPoint(1e6)
	if err != nil {
		t.Fatal(err)
	}
	agg := &FixedPointAggregator{Fixed: fx}
	quantized, err := NewTrainer(TrainerConfig{Workers: 4, Features: 16, Classes: 4, Seed: 3},
		train, agg)
	if err != nil {
		t.Fatal(err)
	}
	qAcc, err := quantized.Run(300, valid)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Saturations != 0 {
		t.Errorf("unexpected saturations: %d", agg.Saturations)
	}
	if math.Abs(qAcc-exactAcc) > 0.02 {
		t.Errorf("quantized acc %.3f vs exact %.3f, want within 0.02", qAcc, exactAcc)
	}
}

func TestTinyScalingFactorStallsTraining(t *testing.T) {
	// Appendix C / Figure 10 left side: a far-too-small f rounds all
	// gradients to zero and training never improves on chance.
	train, valid := mixture(t)
	fx, _ := quant.NewFixedPoint(1e-6)
	tr, err := NewTrainer(TrainerConfig{Workers: 4, Features: 16, Classes: 4, Seed: 4},
		train, &FixedPointAggregator{Fixed: fx})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tr.Run(200, valid)
	if err != nil {
		t.Fatal(err)
	}
	if acc > 0.45 {
		t.Errorf("f=1e-6 accuracy = %.3f, expected near chance (0.25)", acc)
	}
}

func TestHugeScalingFactorDegradesTraining(t *testing.T) {
	// Figure 10 right side: an f that overflows int32 clamps
	// gradients and harms training versus exact aggregation.
	train, valid := mixture(t)
	fx, _ := quant.NewFixedPoint(1e12)
	agg := &FixedPointAggregator{Fixed: fx}
	tr, err := NewTrainer(TrainerConfig{Workers: 4, Features: 16, Classes: 4, Seed: 5},
		train, agg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tr.Run(300, valid)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Saturations == 0 {
		t.Fatal("f=1e12 never saturated; test premise broken")
	}
	if acc > 0.90 {
		t.Errorf("f=1e12 accuracy = %.3f, expected degradation (< 0.90)", acc)
	}
}

func TestFixedPointAggregatorIntSumHook(t *testing.T) {
	fx, _ := quant.NewFixedPoint(100)
	called := false
	agg := &FixedPointAggregator{
		Fixed: fx,
		IntSum: func(out []int32, ints [][]int32) error {
			called = true
			for _, iv := range ints {
				for i, v := range iv {
					out[i] += v
				}
			}
			return nil
		},
	}
	out := make([]float32, 2)
	if err := agg.Aggregate(out, [][]float32{{1.5, 2}, {0.5, -1}}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("IntSum hook not called")
	}
	if out[0] != 2 || out[1] != 1 {
		t.Errorf("aggregate = %v, want [2 1]", out)
	}
}

func TestTrainerValidation(t *testing.T) {
	train, _ := mixture(t)
	if _, err := NewTrainer(TrainerConfig{Workers: 4, Features: 16, Classes: 4}, train, nil); err == nil {
		t.Error("nil aggregator accepted")
	}
	if _, err := NewTrainer(TrainerConfig{Workers: 4, Features: 9, Classes: 4}, train, ExactAggregator{}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := NewTrainer(TrainerConfig{Workers: 4000, Features: 16, Classes: 4}, train, ExactAggregator{}); err == nil {
		t.Error("shard smaller than batch accepted")
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	d := &Dataset{Classes: 2, Features: 1}
	if acc := d.Accuracy(func([]float32) int { return 0 }); !math.IsNaN(acc) {
		t.Errorf("empty accuracy = %v, want NaN", acc)
	}
}

func TestTrainerAccessorsAndDefaults(t *testing.T) {
	train, valid := mixture(t)
	tr, err := NewTrainer(TrainerConfig{Features: 16, Classes: 4, Seed: 1}, train, ExactAggregator{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Model() == nil {
		t.Error("Model() nil")
	}
	if tr.Iterations() != 0 {
		t.Error("Iterations before Run")
	}
	if _, err := tr.Run(3, valid); err != nil {
		t.Fatal(err)
	}
	if tr.Iterations() != 3 {
		t.Errorf("Iterations = %d, want 3", tr.Iterations())
	}
	// Run propagates aggregator errors.
	bad := &FixedPointAggregator{Fixed: mustFixed(t), IntSum: func([]int32, [][]int32) error {
		return errStop{}
	}}
	tr2, err := NewTrainer(TrainerConfig{Features: 16, Classes: 4, Seed: 2}, train, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Run(1, valid); err == nil {
		t.Error("aggregator error not propagated")
	}
}

type errStop struct{}

func (errStop) Error() string { return "stop" }

func mustFixed(t *testing.T) *quant.FixedPoint {
	t.Helper()
	fx, err := quant.NewFixedPoint(100)
	if err != nil {
		t.Fatal(err)
	}
	return fx
}
