package ml

import (
	"math"
	"testing"
)

// Published parameter counts for the benchmark architectures
// (ImageNet, 1000 classes).
var knownParams = map[string]float64{
	"alexnet":    61.0e6,
	"googlenet":  7.0e6,
	"inception3": 23.85e6,
	"inception4": 42.68e6,
	"resnet50":   25.56e6,
	"resnet101":  44.55e6,
	"vgg11":      132.86e6,
	"vgg16":      138.36e6,
	"vgg19":      143.67e6,
}

func TestZooParamCounts(t *testing.T) {
	for _, m := range Zoo() {
		want, ok := knownParams[m.Name]
		if !ok {
			t.Errorf("model %q not in known table", m.Name)
			continue
		}
		got := float64(m.Params())
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("%s: %0.2fM params, want %0.2fM (±3%%)", m.Name, got/1e6, want/1e6)
		}
	}
}

func TestZooCompleteAndOrdered(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 9 {
		t.Fatalf("zoo has %d models, want 9", len(zoo))
	}
	for _, m := range zoo {
		if m.SingleGPUImagesPerSec <= 0 || m.Batch <= 0 {
			t.Errorf("%s: incomplete spec", m.Name)
		}
		for i, g := range m.GradTensors {
			if g <= 0 {
				t.Errorf("%s: tensor %d is %d", m.Name, i, g)
			}
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("vgg16")
	if err != nil || m.Name != "vgg16" {
		t.Errorf("ByName(vgg16) = %v, %v", m.Name, err)
	}
	if _, err := ByName("lenet"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestTable1IdealColumn(t *testing.T) {
	// Table 1's Ideal column is 8x single-GPU throughput.
	for name, want := range map[string]float64{
		"inception3": 1132, "resnet50": 1838, "vgg16": 1180,
	} {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := IdealImagesPerSec(m, 8)
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("%s ideal = %.0f img/s, want %.0f", name, got, want)
		}
	}
}

func TestSimulateTrainingIdealNoComm(t *testing.T) {
	m, _ := ByName("resnet50")
	res, err := SimulateTraining(TrainConfig{Model: m, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := IdealImagesPerSec(m, 8)
	if math.Abs(res.ImagesPerSec-want)/want > 1e-9 {
		t.Errorf("free comm = %.1f img/s, want ideal %.1f", res.ImagesPerSec, want)
	}
}

func TestSimulateTrainingMonotonicInRate(t *testing.T) {
	m, _ := ByName("vgg16")
	prev := 0.0
	for _, rate := range []float64{20e6, 60e6, 200e6, 1e9} {
		res, err := SimulateTraining(TrainConfig{
			Model: m, Workers: 8,
			Comm: CommModel{Name: "x", ATEPerSec: rate},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.ImagesPerSec <= prev {
			t.Errorf("rate %v: throughput %v not increasing", rate, res.ImagesPerSec)
		}
		prev = res.ImagesPerSec
	}
}

func TestSimulateTrainingCommBound(t *testing.T) {
	// vgg16 at NCCL-like 65M ATE/s must be strongly network-bound;
	// inception3 at SwitchML-like 210M must be nearly compute-bound.
	vgg, _ := ByName("vgg16")
	res, err := SimulateTraining(TrainConfig{Model: vgg, Workers: 8,
		Comm: CommModel{ATEPerSec: 65e6}})
	if err != nil {
		t.Fatal(err)
	}
	if frac := res.ImagesPerSec / IdealImagesPerSec(vgg, 8); frac > 0.35 {
		t.Errorf("vgg16@65M reaches %.2f of ideal, expected network-bound (<0.35)", frac)
	}
	inc, _ := ByName("inception3")
	res2, err := SimulateTraining(TrainConfig{Model: inc, Workers: 8,
		Comm: CommModel{ATEPerSec: 210e6}})
	if err != nil {
		t.Fatal(err)
	}
	if frac := res2.ImagesPerSec / IdealImagesPerSec(inc, 8); frac < 0.85 {
		t.Errorf("inception3@210M reaches %.2f of ideal, expected compute-bound (>0.85)", frac)
	}
}

func TestSimulateTrainingValidation(t *testing.T) {
	m, _ := ByName("vgg16")
	if _, err := SimulateTraining(TrainConfig{Model: m, Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := SimulateTraining(TrainConfig{Model: ModelSpec{}, Workers: 2}); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := SimulateTraining(TrainConfig{Model: m, Workers: 2, BackwardFraction: 1.5}); err == nil {
		t.Error("bad backward fraction accepted")
	}
}

func TestMultiGPUCalibration(t *testing.T) {
	// Table 1 Multi-GPU column: inception3 1079 (95.3% of ideal),
	// resnet50 1630 (88.7%), vgg16 898 (76.1%). The calibrated model
	// must land within 10 percentage points of each.
	for name, want := range map[string]float64{
		"inception3": 0.953, "resnet50": 0.887, "vgg16": 0.761,
	} {
		m, _ := ByName(name)
		res, err := SimulateTraining(TrainConfig{Model: m, Workers: 8, Comm: MultiGPUComm()})
		if err != nil {
			t.Fatal(err)
		}
		frac := res.ImagesPerSec / IdealImagesPerSec(m, 8)
		// The timeline model omits input-pipeline overheads, so
		// compute-bound models land slightly above the measured
		// column; 12 points covers the calibration gap.
		if math.Abs(frac-want) > 0.12 {
			t.Errorf("%s multi-GPU = %.3f of ideal, want ~%.3f", name, frac, want)
		}
	}
}
