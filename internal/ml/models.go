// Package ml provides the machine-learning substrate of the
// reproduction: the DNN model zoo with per-layer gradient schedules
// used by the training-throughput experiments (Table 1, Figure 3),
// and a real data-parallel SGD trainer on synthetic data used by the
// quantization study (Figure 10 / Appendix C).
package ml

import "fmt"

// ModelSpec describes one benchmark DNN as the communication layer
// sees it: the gradient tensors back-propagation emits (in emission
// order, output layer first) and the single-GPU training throughput
// that sets the compute timeline.
type ModelSpec struct {
	// Name is the benchmark name used in the paper's figures.
	Name string
	// GradTensors lists per-layer gradient tensor sizes in elements,
	// in back-propagation emission order (output side first). Most
	// frameworks emit one tensor per weight/bias pair; biases are
	// folded into their layer.
	GradTensors []int
	// SingleGPUImagesPerSec is the measured one-GPU training
	// throughput (NVidia P100, per the paper's testbed, at Batch).
	SingleGPUImagesPerSec float64
	// Batch is the per-GPU mini-batch size used in the evaluation
	// (§5.1: 128 by default, 64 for Table 1 models, 512 for AlexNet).
	Batch int
}

// Params returns the total parameter (= gradient element) count.
func (m ModelSpec) Params() int {
	total := 0
	for _, t := range m.GradTensors {
		total += t
	}
	return total
}

// ByName returns the spec for one of the nine benchmark models of
// Figure 3.
func ByName(name string) (ModelSpec, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return ModelSpec{}, fmt.Errorf("ml: unknown model %q", name)
}

// Zoo returns the nine models of Figure 3 in the paper's order.
// Parameter totals match the published architectures to within ~2%;
// single-GPU throughputs are the P100 numbers implied by Table 1
// (ideal = 8x single GPU) and the public TensorFlow benchmark results
// the paper cross-references [55].
func Zoo() []ModelSpec {
	return []ModelSpec{
		alexnet(), googlenet(), inception3(), inception4(),
		resnet50(), resnet101(), vgg("vgg11"), vgg("vgg16"), vgg("vgg19"),
	}
}

func alexnet() ModelSpec {
	return ModelSpec{
		Name: "alexnet",
		GradTensors: []int{
			// fc8, fc7, fc6 dominate; then conv5..conv1.
			4_097_000, 16_781_312, 37_752_832,
			442_624, 663_936, 885_120, 307_456, 34_944,
		},
		SingleGPUImagesPerSec: 2800, // synthetic data, batch 512 [55]
		Batch:                 512,
	}
}

func googlenet() ModelSpec {
	// GoogLeNet: ~7.0M params across 1 fc + 9 inception modules + stem.
	t := []int{1_024_000} // classifier fc
	inception := []int{1_444_080, 1_072_384, 840_032, 584_816, 510_400, 437_104, 389_376, 380_160, 364_416}
	t = append(t, inception...)
	t = append(t, 114_944, 2_432) // stem convs
	return ModelSpec{Name: "googlenet", GradTensors: t, SingleGPUImagesPerSec: 440, Batch: 128}
}

func inception3() ModelSpec {
	// Inception-v3: 23.85M params; 96 gradient tensors in the real
	// model, grouped here into the 11 inception blocks + stem + fc.
	t := []int{2_049_000} // fc
	blocks := []int{5_160_000, 3_480_000, 2_520_000, 1_820_000, 1_530_000,
		1_310_000, 1_230_000, 1_130_000, 1_050_000, 980_000, 860_000}
	t = append(t, blocks...)
	t = append(t, 640_000, 91_200) // stem
	return ModelSpec{Name: "inception3", GradTensors: t, SingleGPUImagesPerSec: 141.5, Batch: 64}
}

func inception4() ModelSpec {
	// Inception-v4: 42.68M params.
	t := []int{1_537_000} // fc
	blocks := []int{8_850_000, 6_460_000, 4_830_000, 3_680_000, 2_960_000,
		2_450_000, 2_210_000, 1_990_000, 1_780_000, 1_640_000, 1_530_000}
	t = append(t, blocks...)
	t = append(t, 2_650_000, 113_000) // stem
	return ModelSpec{Name: "inception4", GradTensors: t, SingleGPUImagesPerSec: 65, Batch: 128}
}

func resnet50() ModelSpec {
	// ResNet-50: 25.56M params; fc + 16 bottleneck blocks + stem,
	// emitted output-side first (stage 4 blocks carry most params).
	t := []int{2_049_000} // fc
	stage4 := []int{4_720_000, 4_460_000, 5_850_000}
	stage3 := []int{1_180_000, 1_120_000, 1_120_000, 1_120_000, 1_120_000, 1_470_000}
	stage2 := []int{296_000, 280_000, 280_000, 379_000}
	stage1 := []int{75_000, 70_000, 96_000}
	t = append(t, stage4...)
	t = append(t, stage3...)
	t = append(t, stage2...)
	t = append(t, stage1...)
	t = append(t, 9_472) // conv1
	return ModelSpec{Name: "resnet50", GradTensors: t, SingleGPUImagesPerSec: 229.75, Batch: 64}
}

func resnet101() ModelSpec {
	// ResNet-101: 44.55M params; stage 3 grows to 23 blocks.
	t := []int{2_049_000}
	stage4 := []int{4_720_000, 4_460_000, 5_850_000}
	t = append(t, stage4...)
	for i := 0; i < 22; i++ {
		t = append(t, 1_120_000)
	}
	t = append(t, 1_470_000) // stage3 entry block
	stage2 := []int{296_000, 280_000, 280_000, 379_000}
	stage1 := []int{75_000, 70_000, 96_000}
	t = append(t, stage2...)
	t = append(t, stage1...)
	t = append(t, 9_472)
	return ModelSpec{Name: "resnet101", GradTensors: t, SingleGPUImagesPerSec: 132, Batch: 64}
}

// vgg returns VGG-11/16/19. All share the 123.6M-parameter classifier
// (fc6 is the single largest tensor in the whole zoo at 102.8M); the
// conv stacks differ.
func vgg(name string) ModelSpec {
	fc := []int{4_097_000, 16_781_312, 102_764_544}
	var convs []int
	var imgs float64
	switch name {
	case "vgg11":
		convs = []int{2_359_808, 2_359_808, 2_359_808, 1_180_160, 590_080, 295_168, 73_856, 1_792}
		imgs = 180
	case "vgg16":
		convs = []int{2_359_808, 2_359_808, 2_359_808, 2_359_808, 2_359_808, 1_180_160,
			590_080, 590_080, 295_168, 147_584, 73_856, 36_928, 1_792}
		imgs = 147.5
	case "vgg19":
		convs = []int{2_359_808, 2_359_808, 2_359_808, 2_359_808, 2_359_808, 2_359_808,
			2_359_808, 1_180_160, 590_080, 590_080, 590_080, 295_168, 147_584, 73_856, 36_928, 1_792}
		imgs = 125
	default:
		panic("ml: unknown vgg variant " + name)
	}
	return ModelSpec{
		Name:                  name,
		GradTensors:           append(append([]int{}, fc...), convs...),
		SingleGPUImagesPerSec: imgs,
		Batch:                 64,
	}
}
