package ml

import "fmt"

// This file models the distributed training timeline that converts a
// communication strategy's aggregation rate into end-to-end training
// throughput (images/s), the metric of Table 1 and Figure 3.
//
// The model follows the paper's description of the integration
// (Appendix B): back-propagation produces gradient tensors starting
// from the output layer; each tensor is handed to the synchronous
// all-reduce as soon as it is ready, partially overlapping
// communication with the remaining backward computation; tensors are
// aggregated independently but sequentially; and the next iteration's
// forward pass begins only when every aggregated tensor has been
// applied.

// CommModel describes a communication strategy's cost for one tensor.
type CommModel struct {
	// Name identifies the strategy in reports.
	Name string
	// ATEPerSec is the steady-state aggregation rate in elements per
	// second, taken from the microbenchmarks (Figure 4).
	ATEPerSec float64
	// PerTensorOverhead is the fixed setup cost per tensor in seconds
	// (framework invocation, stream handoff, first/last packet
	// latency). Zero selects 50 µs.
	PerTensorOverhead float64
}

func (c CommModel) overhead() float64 {
	if c.PerTensorOverhead == 0 {
		return 50e-6
	}
	return c.PerTensorOverhead
}

// TensorTime returns the aggregation time for one tensor.
func (c CommModel) TensorTime(elems int) float64 {
	if c.ATEPerSec <= 0 {
		return 0
	}
	return c.overhead() + float64(elems)/c.ATEPerSec
}

// TrainConfig describes a training-throughput estimate.
type TrainConfig struct {
	Model ModelSpec
	// Workers is the number of GPU workers.
	Workers int
	// Comm is the aggregation strategy; a zero ATEPerSec means
	// communication is free (the "Ideal" column of Table 1).
	Comm CommModel
	// BackwardFraction is the share of the single-GPU iteration spent
	// in the backward pass (gradients become available during it);
	// zero selects 0.6.
	BackwardFraction float64
}

// TrainResult is the outcome of one timeline simulation.
type TrainResult struct {
	// ImagesPerSec is the aggregate cluster training throughput.
	ImagesPerSec float64
	// IterationSec is the steady-state iteration time.
	IterationSec float64
	// CommSec is the span from first tensor ready to last tensor
	// aggregated.
	CommSec float64
	// OverlapFraction is the share of communication hidden under
	// compute.
	OverlapFraction float64
}

// SimulateTraining runs the per-tensor timeline for one iteration and
// returns the steady-state throughput.
//
// Timeline: the forward pass runs for F seconds, then the backward
// pass emits gradient tensors over B seconds. Tensor j (output side
// first) becomes ready once the backward pass has covered its layer
// (approximated by cumulative parameter mass, output to input).
// Aggregations run sequentially in ready order. The iteration ends
// when both compute and the last aggregation are done.
func SimulateTraining(cfg TrainConfig) (TrainResult, error) {
	if cfg.Workers <= 0 {
		return TrainResult{}, fmt.Errorf("ml: worker count must be positive, got %d", cfg.Workers)
	}
	m := cfg.Model
	if len(m.GradTensors) == 0 || m.SingleGPUImagesPerSec <= 0 || m.Batch <= 0 {
		return TrainResult{}, fmt.Errorf("ml: incomplete model spec %q", m.Name)
	}
	bf := cfg.BackwardFraction
	if bf == 0 {
		bf = 0.6
	}
	if bf < 0 || bf > 1 {
		return TrainResult{}, fmt.Errorf("ml: backward fraction %v out of [0,1]", bf)
	}

	iterCompute := float64(m.Batch) / m.SingleGPUImagesPerSec
	forward := (1 - bf) * iterCompute
	backward := bf * iterCompute

	// Tensor readiness: tensor j is emitted once the backward pass
	// has processed layers 0..j. Per-layer backward time is modelled
	// as uniform: convolutional layers dominate FLOPs while the
	// parameter-heavy fully-connected layers are compute-cheap, so
	// pacing by parameter mass would wrongly delay the largest
	// tensors.
	ready := make([]float64, len(m.GradTensors))
	for j := range m.GradTensors {
		ready[j] = forward + backward*float64(j+1)/float64(len(m.GradTensors))
	}

	// Sequential aggregation in emission order.
	aggDone := 0.0
	firstReady := ready[0]
	for j, t := range m.GradTensors {
		start := ready[j]
		if aggDone > start {
			start = aggDone
		}
		aggDone = start + cfg.Comm.TensorTime(t)
	}

	iter := iterCompute
	if aggDone > iter {
		iter = aggDone
	}
	res := TrainResult{
		ImagesPerSec: float64(cfg.Workers) * float64(m.Batch) / iter,
		IterationSec: iter,
		CommSec:      aggDone - firstReady,
	}
	if res.CommSec > 0 {
		exposed := iter - iterCompute
		res.OverlapFraction = 1 - exposed/res.CommSec
	}
	return res, nil
}

// IdealImagesPerSec is the paper's "Ideal" column: n times the
// single-GPU throughput.
func IdealImagesPerSec(m ModelSpec, workers int) float64 {
	return float64(workers) * m.SingleGPUImagesPerSec
}

// MultiGPUComm returns the communication model calibrated to the
// single-node eight-GPU baseline of Table 1 (PCIe/NVLink all-reduce
// inside one chassis). The rate is fit to the network-bound models
// (vgg16 at 76% of ideal); compute-bound models land a few points
// above the measured column because the timeline model has no
// input-pipeline or kernel-launch overheads.
func MultiGPUComm() CommModel {
	return CommModel{Name: "multi-gpu", ATEPerSec: 370e6, PerTensorOverhead: 50e-6}
}
