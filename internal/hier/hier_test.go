package hier

import (
	"math/rand"
	"testing"

	"switchml/internal/netsim"
)

func checkTree(t *testing.T, tr *Tree, want []int32) {
	t.Helper()
	for i := 0; i < tr.Workers(); i++ {
		got := tr.Aggregate(i)
		if len(got) != len(want) {
			t.Fatalf("worker %d: length %d != %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("worker %d elem %d: got %d want %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestTreeLosslessCorrectness(t *testing.T) {
	tr, err := NewTree(Config{Racks: 2, WorkersPerRack: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const d = 5000
	us := make([][]int32, tr.Workers())
	want := make([]int32, d)
	for i := range us {
		us[i] = make([]int32, d)
		for j := range us[i] {
			us[i][j] = int32(rng.Intn(201) - 100)
			want[j] += us[i][j]
		}
	}
	res, err := tr.AllReduce(us)
	if err != nil {
		t.Fatal(err)
	}
	if res.TAT <= 0 {
		t.Error("TAT not positive")
	}
	checkTree(t, tr, want)
}

func TestTreeThreeRacks(t *testing.T) {
	tr, err := NewTree(Config{Racks: 3, WorkersPerRack: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, 3000)
	for j := range u {
		u[j] = int32(j%17 - 8)
	}
	if _, err := tr.AllReduceShared(u); err != nil {
		t.Fatal(err)
	}
	want := make([]int32, len(u))
	for j := range want {
		want[j] = 6 * u[j]
	}
	checkTree(t, tr, want)
}

func TestTreeLossyCorrectness(t *testing.T) {
	// Loss on every link of the tree, including rack-root links: the
	// §6 composed recovery must still deliver exact results.
	for _, loss := range []float64{0.005, 0.02} {
		tr, err := NewTree(Config{
			Racks: 2, WorkersPerRack: 3, LossRate: loss, Seed: 11,
			RTO: 150 * netsim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		u := make([]int32, 20000)
		for j := range u {
			u[j] = int32(j % 23)
		}
		res, err := tr.AllReduceShared(u)
		if err != nil {
			t.Fatalf("loss %v: %v", loss, err)
		}
		want := make([]int32, len(u))
		for j := range want {
			want[j] = 6 * u[j]
		}
		checkTree(t, tr, want)
		if loss >= 0.02 && res.Retransmissions == 0 {
			t.Error("expected retransmissions at 2% loss")
		}
	}
}

func TestTreeConsecutiveTensors(t *testing.T) {
	tr, err := NewTree(Config{Racks: 2, WorkersPerRack: 2, LossRate: 0.01, Seed: 5,
		RTO: 150 * netsim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 3; iter++ {
		u := make([]int32, 2000+iter*500)
		for j := range u {
			u[j] = int32(iter*j%19 + 1)
		}
		if _, err := tr.AllReduceShared(u); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want := make([]int32, len(u))
		for j := range want {
			want[j] = 4 * u[j]
		}
		checkTree(t, tr, want)
	}
}

func TestTreeBandwidthOptimal(t *testing.T) {
	// §6: hierarchical composition is bandwidth-optimal — TAT should
	// stay close to the single-rack wire bound since rack uplinks
	// carry only one aggregated stream.
	tr, err := NewTree(Config{Racks: 4, WorkersPerRack: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const elems = 1 << 17
	u := make([]int32, elems)
	res, err := tr.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	pkts := (elems + 31) / 32
	wire := netsim.Time(float64(pkts*180*8) / 10e9 * 1e9)
	if res.TAT < wire {
		t.Fatalf("TAT %v below wire bound %v", res.TAT, wire)
	}
	if float64(res.TAT) > 1.10*float64(wire) {
		t.Errorf("TAT %v more than 10%% above wire bound %v (16 workers, 2 levels)", res.TAT, wire)
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := NewTree(Config{Racks: 0, WorkersPerRack: 2}); err == nil {
		t.Error("zero racks accepted")
	}
	tr, _ := NewTree(Config{Racks: 2, WorkersPerRack: 2, Seed: 1})
	if _, err := tr.AllReduce([][]int32{{1}}); err == nil {
		t.Error("wrong update count accepted")
	}
}

func TestTreeDeterminism(t *testing.T) {
	run := func() netsim.Time {
		tr, err := NewTree(Config{Racks: 2, WorkersPerRack: 2, LossRate: 0.02, Seed: 9,
			RTO: 150 * netsim.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		u := make([]int32, 10000)
		res, err := tr.AllReduceShared(u)
		if err != nil {
			t.Fatal(err)
		}
		return res.TAT
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestThreeLevelTree(t *testing.T) {
	// §6's layer-i composition with H=3: 4 workers per leaf switch, 2
	// leaf switches per mid switch, 2 mid switches under the root —
	// 16 workers through 3 switch layers.
	tr, err := NewTree(Config{Levels: []int{4, 2, 2}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Workers() != 16 {
		t.Fatalf("Workers = %d, want 16", tr.Workers())
	}
	u := make([]int32, 4000)
	for j := range u {
		u[j] = int32(j%13 - 6)
	}
	if _, err := tr.AllReduceShared(u); err != nil {
		t.Fatal(err)
	}
	want := make([]int32, len(u))
	for j := range want {
		want[j] = 16 * u[j]
	}
	checkTree(t, tr, want)
}

func TestThreeLevelTreeLossy(t *testing.T) {
	// Loss on all links of a depth-3 tree: composed recovery across
	// two intermediate layers.
	tr, err := NewTree(Config{Levels: []int{2, 2, 2}, LossRate: 0.01, Seed: 13,
		RTO: 200 * netsim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]int32, 8000)
	for j := range u {
		u[j] = int32(j % 7)
	}
	res, err := tr.AllReduceShared(u)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int32, len(u))
	for j := range want {
		want[j] = 8 * u[j]
	}
	checkTree(t, tr, want)
	if res.Retransmissions == 0 {
		t.Error("expected retransmissions")
	}
}

func TestFourLevelDistinctUpdates(t *testing.T) {
	tr, err := NewTree(Config{Levels: []int{2, 2, 2, 2}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Workers() != 16 {
		t.Fatalf("Workers = %d, want 16", tr.Workers())
	}
	us := make([][]int32, 16)
	want := make([]int32, 500)
	for i := range us {
		us[i] = make([]int32, 500)
		for j := range us[i] {
			us[i][j] = int32(i*j%11 - 5)
			want[j] += us[i][j]
		}
	}
	if _, err := tr.AllReduce(us); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr, want)
}

func TestTreeLevelValidation(t *testing.T) {
	if _, err := NewTree(Config{Levels: []int{4, 0}}); err == nil {
		t.Error("zero fanout accepted")
	}
}

func TestTreeSimAccessor(t *testing.T) {
	tr, err := NewTree(Config{Racks: 1, WorkersPerRack: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Sim() == nil {
		t.Fatal("Sim() nil")
	}
	if _, err := tr.AllReduceShared([]int32{1}); err != nil {
		t.Fatal(err)
	}
	if tr.Sim().Processed() == 0 {
		t.Error("no events processed")
	}
}
