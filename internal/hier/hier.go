// Package hier implements the multi-rack hierarchical composition of
// §6 ("Scaling beyond a rack"): workers attach to layer-1 (rack)
// switches, each rack switch aggregates its d downstream ports and
// forwards partial aggregates to the root switch, and the root
// completes the aggregation and multicasts results back down the
// tree.
//
// Loss recovery composes as the paper describes: a worker's
// retransmission is recognized as such at its rack switch (seen bit
// set), which re-forwards the partial aggregate upward, so a loss
// anywhere on the tree is always repaired by end-host timers alone.
package hier

import (
	"fmt"

	"switchml/internal/core"
	"switchml/internal/netsim"
	"switchml/internal/packet"
	"switchml/internal/rack"
)

// Config describes an aggregation tree. The common two-level rack
// deployment sets Racks and WorkersPerRack; deeper hierarchies (§6's
// layer-i composition with H > 2) set Levels instead.
type Config struct {
	// Racks is the number of layer-1 switches.
	Racks int
	// WorkersPerRack is d, the downstream ports per rack switch.
	WorkersPerRack int
	// Levels, when non-empty, describes the fanout at each tree
	// level, leaves first: {4, 2, 2} is 4 workers per leaf switch, 2
	// leaf switches per mid switch, 2 mid switches under the root —
	// 16 workers through 3 switch layers. Overrides Racks and
	// WorkersPerRack.
	Levels []int
	// PoolSize is s, identical at every layer so slot indices map 1:1
	// across the tree; zero uses the rack default tuning with the
	// tree's deeper RTT.
	PoolSize int
	// SlotElems is k; zero selects 32.
	SlotElems int
	// LinkBitsPerSec applies to every link (worker access and rack
	// uplinks); zero selects 10 Gbps.
	LinkBitsPerSec float64
	// Propagation per hop; zero selects 1 µs.
	Propagation netsim.Time
	// LossRate applies independently to every link.
	LossRate float64
	// RTO is the worker retransmission timeout; zero selects 1 ms.
	RTO netsim.Time
	// Seed drives the loss process.
	Seed int64
}

// Tree is a simulated multi-rack SwitchML deployment.
type Tree struct {
	cfg     Config
	sim     *netsim.Sim
	root    *rootNode
	racks   []*rackSwitch
	workers []*rack.WorkerHost
}

// Workers returns the total worker count.
func (t *Tree) Workers() int { return len(t.workers) }

// Sim exposes the simulation clock.
func (t *Tree) Sim() *netsim.Sim { return t.sim }

// NewTree builds the topology.
func NewTree(cfg Config) (*Tree, error) {
	if len(cfg.Levels) == 0 && (cfg.Racks <= 0 || cfg.WorkersPerRack <= 0) {
		return nil, fmt.Errorf("hier: racks and workers per rack must be positive (%d, %d)",
			cfg.Racks, cfg.WorkersPerRack)
	}
	if cfg.SlotElems == 0 {
		cfg.SlotElems = packet.DefaultElems
	}
	if cfg.LinkBitsPerSec == 0 {
		cfg.LinkBitsPerSec = 10e9
	}
	if cfg.Propagation == 0 {
		cfg.Propagation = netsim.Microsecond
	}
	if cfg.RTO == 0 {
		cfg.RTO = netsim.Millisecond
	}
	if cfg.PoolSize == 0 {
		// The tree RTT spans two extra hops; double the single-rack
		// BDP-derived pool.
		pkt := packet.HeaderBytes + packet.ElemBytes*cfg.SlotElems
		cfg.PoolSize = 2 * rack.TunePoolSize(cfg.LinkBitsPerSec, pkt, 8*cfg.Propagation)
	}

	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []int{cfg.WorkersPerRack, cfg.Racks}
	}
	for i, f := range levels {
		if f <= 0 {
			return nil, fmt.Errorf("hier: level %d fanout must be positive, got %d", i, f)
		}
	}

	sim := netsim.NewSim(cfg.Seed)
	t := &Tree{cfg: cfg, sim: sim}

	link := func(name string, dst netsim.Node) *netsim.Link {
		return netsim.NewLink(sim, netsim.LinkConfig{
			Name: name, BitsPerSec: cfg.LinkBitsPerSec,
			Propagation: cfg.Propagation, LossRate: cfg.LossRate,
		}, dst)
	}

	// The root aggregates the top level's children.
	rootSw, err := core.NewSwitch(core.SwitchConfig{
		Workers:      levels[len(levels)-1],
		PoolSize:     cfg.PoolSize,
		SlotElems:    cfg.SlotElems,
		LossRecovery: true,
	})
	if err != nil {
		return nil, err
	}
	t.root = &rootNode{sim: sim, sw: rootSw, latency: 400 * netsim.Nanosecond}

	// Build switch layers top-down: parents[i] receives from its
	// children; each child owns an uplink to it and the parent owns a
	// downlink per child. The leaf layer then attaches workers.
	type parent interface {
		netsim.Node
		addChild(down *netsim.Link)
	}
	parents := []parent{t.root}
	for li := len(levels) - 1; li >= 1; li-- {
		fanout := levels[li]
		var next []parent
		for pi, par := range parents {
			for c := 0; c < fanout; c++ {
				sw, err := core.NewSwitch(core.SwitchConfig{
					Workers:      levels[li-1],
					PoolSize:     cfg.PoolSize,
					SlotElems:    cfg.SlotElems,
					LossRecovery: true,
				})
				if err != nil {
					return nil, err
				}
				rs := &rackSwitch{
					sim: sim, sw: sw, childIndex: uint16(c),
					latency: 400 * netsim.Nanosecond,
				}
				name := fmt.Sprintf("l%d.%d.%d", li, pi, c)
				rs.uplink = link(name+"->up", par)
				par.addChild(link("down->"+name, rs))
				t.racks = append(t.racks, rs)
				next = append(next, rs)
			}
		}
		parents = next
	}

	workerCfg := rack.Config{
		Workers:        levels[0],
		PoolSize:       cfg.PoolSize,
		SlotElems:      cfg.SlotElems,
		LinkBitsPerSec: cfg.LinkBitsPerSec,
		Propagation:    cfg.Propagation,
		RTO:            cfg.RTO,
		LossRecovery:   true,
		Seed:           cfg.Seed,
	}
	for pi, par := range parents {
		for w := 0; w < levels[0]; w++ {
			h, err := rack.NewWorkerHost(sim, workerCfg, uint16(w))
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("w%d.%d", pi, w)
			h.SetUplink(link(name+"->sw", par))
			par.addChild(link("sw->"+name, h))
			t.workers = append(t.workers, h)
		}
	}
	return t, nil
}

// Result summarizes one tree aggregation.
type Result struct {
	TAT             netsim.Time
	Retransmissions uint64
}

// AllReduceShared aggregates one tensor with identical contents on
// every worker across the whole tree.
func (t *Tree) AllReduceShared(u []int32) (Result, error) {
	us := make([][]int32, len(t.workers))
	for i := range us {
		us[i] = u
	}
	return t.AllReduce(us)
}

// AllReduce aggregates one tensor; updates[i] is worker i's
// contribution (workers are numbered rack-major).
func (t *Tree) AllReduce(updates [][]int32) (Result, error) {
	if len(updates) != len(t.workers) {
		return Result{}, fmt.Errorf("hier: got %d updates for %d workers", len(updates), len(t.workers))
	}
	start := t.sim.Now()
	remaining := len(t.workers)
	var last netsim.Time
	for i, h := range t.workers {
		h.Start(updates[i], func(tm netsim.Time) {
			remaining--
			if tm > last {
				last = tm
			}
		})
	}
	t.sim.Run()
	if remaining != 0 {
		return Result{}, fmt.Errorf("hier: %d workers unfinished", remaining)
	}
	res := Result{TAT: last - start}
	for _, h := range t.workers {
		res.Retransmissions += h.Worker().Stats().Retransmissions
	}
	return res, nil
}

// Aggregate returns worker i's output buffer.
func (t *Tree) Aggregate(i int) []int32 { return t.workers[i].Worker().Aggregate() }

// rackSwitch is a layer-1 switch: it aggregates its workers and acts
// as worker childIndex toward the root.
type rackSwitch struct {
	sim        *netsim.Sim
	sw         *core.Switch
	childIndex uint16
	latency    netsim.Time
	uplink     *netsim.Link
	downlinks  []*netsim.Link
}

func (rs *rackSwitch) addChild(down *netsim.Link) { rs.downlinks = append(rs.downlinks, down) }

// Deliver handles both updates from workers (from below) and results
// from the root (from above).
func (rs *rackSwitch) Deliver(msg netsim.Message) {
	p := msg.(*packet.Packet)
	switch p.Kind {
	case packet.KindUpdate:
		resp := rs.sw.Handle(p)
		if resp.Pkt == nil {
			return
		}
		if resp.Multicast {
			// Slot completed here: forward the partial aggregate
			// upward instead of multicasting down (§6).
			up := resp.Pkt
			up.Kind = packet.KindUpdate
			up.WorkerID = rs.childIndex
			rs.sim.After(rs.latency, func() { rs.uplink.Send(up) })
			return
		}
		// A retransmission for a slot we already completed: the final
		// result is not here yet (or was lost downstream), so re-push
		// our partial aggregate upward; the root will either absorb
		// it (still aggregating) or reply with the final result.
		up := resp.Pkt
		up.Kind = packet.KindUpdate
		up.WorkerID = rs.childIndex
		rs.sim.After(rs.latency, func() { rs.uplink.Send(up) })
	case packet.KindResult, packet.KindResultUnicast:
		// Final result from the root: multicast to the rack. Unicast
		// repair results also fan out; workers that already hold the
		// value deduplicate.
		rs.sim.After(rs.latency, func() {
			for _, dl := range rs.downlinks {
				dl.Send(p.Clone())
			}
		})
	}
}

// rootNode completes the aggregation of partial aggregates.
type rootNode struct {
	sim       *netsim.Sim
	sw        *core.Switch
	latency   netsim.Time
	downlinks []*netsim.Link
}

func (rn *rootNode) addChild(down *netsim.Link) { rn.downlinks = append(rn.downlinks, down) }

func (rn *rootNode) Deliver(msg netsim.Message) {
	p := msg.(*packet.Packet)
	resp := rn.sw.Handle(p)
	if resp.Pkt == nil {
		return
	}
	rn.sim.After(rn.latency, func() {
		if resp.Multicast {
			for _, dl := range rn.downlinks {
				dl.Send(resp.Pkt.Clone())
			}
			return
		}
		rn.downlinks[resp.Pkt.WorkerID].Send(resp.Pkt)
	})
}
