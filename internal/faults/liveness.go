package faults

// Tracker is the per-worker liveness bookkeeping behind the failure
// detector: every protocol message (update, retransmission or
// explicit heartbeat) from a worker touches its entry, and a sweep
// asks for suspects — workers silent past the threshold while at
// least one peer kept making progress, the condition that separates
// "the job is idle" from "this worker is dead".
//
// Time is plain int64 nanoseconds so the same tracker serves both the
// simulator (virtual time) and the UDP transport (wall clock). The
// tracker is not synchronized; hosts serialize access (the rack is
// single-threaded, the aggregator holds its mutex).
type Tracker struct {
	// lastSeen is the last progress timestamp per worker; -1 means
	// never seen (a worker that never joined cannot be detected or
	// notified, so it is ignored by sweeps).
	lastSeen []int64
	dead     []bool
	silence  int64
}

// NewTracker returns a tracker for n workers with the given silence
// threshold in nanoseconds.
func NewTracker(n int, silence int64) *Tracker {
	t := &Tracker{
		lastSeen: make([]int64, n),
		dead:     make([]bool, n),
		silence:  silence,
	}
	for i := range t.lastSeen {
		t.lastSeen[i] = -1
	}
	return t
}

// Silence returns the configured silence threshold.
func (t *Tracker) Silence() int64 { return t.silence }

// Touch records progress from worker w at time now. Progress from a
// worker already declared dead is ignored: its epoch has been retired
// and it can only rejoin through a reconfiguration.
func (t *Tracker) Touch(w int, now int64) {
	if w < 0 || w >= len(t.lastSeen) || t.dead[w] {
		return
	}
	t.lastSeen[w] = now
}

// LastSeen returns worker w's last progress timestamp, -1 if never
// seen.
func (t *Tracker) LastSeen(w int) int64 {
	if w < 0 || w >= len(t.lastSeen) {
		return -1
	}
	return t.lastSeen[w]
}

// MarkDead retires a worker; it is excluded from future sweeps.
func (t *Tracker) MarkDead(w int) {
	if w >= 0 && w < len(t.dead) {
		t.dead[w] = true
	}
}

// MarkAlive re-admits a worker (job reconfiguration after a restart),
// resetting its progress clock to now so it is not immediately
// re-suspected.
func (t *Tracker) MarkAlive(w int, now int64) {
	if w >= 0 && w < len(t.dead) {
		t.dead[w] = false
		t.lastSeen[w] = now
	}
}

// Dead reports whether worker w has been retired.
func (t *Tracker) Dead(w int) bool {
	return w >= 0 && w < len(t.dead) && t.dead[w]
}

// AliveCount returns the number of workers not retired.
func (t *Tracker) AliveCount() int {
	n := 0
	for _, d := range t.dead {
		if !d {
			n++
		}
	}
	return n
}

// Suspects returns the workers the detector would declare failed at
// time now: seen at least once, not retired, silent for longer than
// the threshold — provided at least one other live worker made
// progress within the threshold (otherwise the whole job is idle and
// silence means nothing).
func (t *Tracker) Suspects(now int64) []int {
	someoneActive := false
	for w, seen := range t.lastSeen {
		if !t.dead[w] && seen >= 0 && now-seen <= t.silence {
			someoneActive = true
			break
		}
	}
	if !someoneActive {
		return nil
	}
	var out []int
	for w, seen := range t.lastSeen {
		if !t.dead[w] && seen >= 0 && now-seen > t.silence {
			out = append(out, w)
		}
	}
	return out
}
