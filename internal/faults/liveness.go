package faults

import "sync/atomic"

// Tracker is the per-worker liveness bookkeeping behind the failure
// detector: every protocol message (update, retransmission or
// explicit heartbeat) from a worker touches its entry, and a sweep
// asks for suspects — workers silent past the threshold while at
// least one peer kept making progress, the condition that separates
// "the job is idle" from "this worker is dead".
//
// Time is plain int64 nanoseconds so the same tracker serves both the
// simulator (virtual time) and the UDP transport (wall clock). The
// per-worker state is atomic, so the transport's shard goroutines can
// Touch and read Dead lock-free on the per-packet path while the
// sweeper runs; compound transitions (a sweep's suspect/MarkDead
// sequence) are serialized by the host.
type Tracker struct {
	// lastSeen is the last progress timestamp per worker; -1 means
	// never seen (a worker that never joined cannot be detected or
	// notified, so it is ignored by sweeps).
	lastSeen []atomic.Int64
	dead     []atomic.Bool
	// draining marks workers that announced a graceful leave: they are
	// excluded from suspicion (their silence is expected, not a
	// failure) and from the someone-active quorum, but still count as
	// alive until retired. departed marks a drain that completed — the
	// voluntary sibling of dead, kept distinct so telemetry and
	// operators can tell a clean exit from a crash.
	draining []atomic.Bool
	departed []atomic.Bool
	silence  int64
}

// NewTracker returns a tracker for n workers with the given silence
// threshold in nanoseconds.
func NewTracker(n int, silence int64) *Tracker {
	t := &Tracker{
		lastSeen: make([]atomic.Int64, n),
		dead:     make([]atomic.Bool, n),
		draining: make([]atomic.Bool, n),
		departed: make([]atomic.Bool, n),
		silence:  silence,
	}
	for i := range t.lastSeen {
		t.lastSeen[i].Store(-1)
	}
	return t
}

// Silence returns the configured silence threshold.
func (t *Tracker) Silence() int64 { return t.silence }

// Reset returns every worker to the initial "never seen, not retired"
// state, as if freshly constructed — used when a restarted job reuses
// the tracker.
func (t *Tracker) Reset() {
	for i := range t.lastSeen {
		t.dead[i].Store(false)
		t.draining[i].Store(false)
		t.departed[i].Store(false)
		t.lastSeen[i].Store(-1)
	}
}

// Touch records progress from worker w at time now. Progress from a
// worker already declared dead is ignored: its epoch has been retired
// and it can only rejoin through a reconfiguration.
func (t *Tracker) Touch(w int, now int64) {
	if w < 0 || w >= len(t.lastSeen) || t.dead[w].Load() {
		return
	}
	t.lastSeen[w].Store(now)
}

// LastSeen returns worker w's last progress timestamp, -1 if never
// seen.
func (t *Tracker) LastSeen(w int) int64 {
	if w < 0 || w >= len(t.lastSeen) {
		return -1
	}
	return t.lastSeen[w].Load()
}

// MarkDead retires a worker; it is excluded from future sweeps.
func (t *Tracker) MarkDead(w int) {
	if w >= 0 && w < len(t.dead) {
		t.dead[w].Store(true)
	}
}

// MarkAlive re-admits a worker (job reconfiguration after a restart,
// or a graceful re-join), resetting its progress clock to now so it
// is not immediately re-suspected and clearing any drain state.
func (t *Tracker) MarkAlive(w int, now int64) {
	if w >= 0 && w < len(t.dead) {
		t.dead[w].Store(false)
		t.draining[w].Store(false)
		t.departed[w].Store(false)
		t.lastSeen[w].Store(now)
	}
}

// Dead reports whether worker w has been retired.
func (t *Tracker) Dead(w int) bool {
	return w >= 0 && w < len(t.dead) && t.dead[w].Load()
}

// MarkDraining records worker w's graceful-leave announcement: its
// coming silence is expected, so sweeps stop suspecting it, but it
// remains alive until MarkDeparted retires it.
func (t *Tracker) MarkDraining(w int) {
	if w >= 0 && w < len(t.draining) && !t.dead[w].Load() {
		t.draining[w].Store(true)
	}
}

// Draining reports whether worker w has announced a graceful leave
// and is finishing its in-flight window.
func (t *Tracker) Draining(w int) bool {
	return w >= 0 && w < len(t.draining) && t.draining[w].Load()
}

// MarkDeparted completes a graceful leave: the worker is retired like
// MarkDead, but the departed flag keeps the exit distinguishable from
// a crash in telemetry.
func (t *Tracker) MarkDeparted(w int) {
	if w >= 0 && w < len(t.dead) {
		t.dead[w].Store(true)
		t.draining[w].Store(false)
		t.departed[w].Store(true)
	}
}

// Departed reports whether worker w left gracefully (as opposed to
// being declared dead by the failure detector).
func (t *Tracker) Departed(w int) bool {
	return w >= 0 && w < len(t.departed) && t.departed[w].Load()
}

// AliveCount returns the number of workers not retired.
func (t *Tracker) AliveCount() int {
	n := 0
	for i := range t.dead {
		if !t.dead[i].Load() {
			n++
		}
	}
	return n
}

// Suspects returns the workers the detector would declare failed at
// time now: seen at least once, not retired, not draining, silent for
// longer than the threshold — provided at least one other live worker
// made progress within the threshold (otherwise the whole job is idle
// and silence means nothing). Draining workers are excluded entirely:
// a graceful leaver's silence is announced, not suspicious.
func (t *Tracker) Suspects(now int64) []int {
	someoneActive := false
	for w := range t.lastSeen {
		if seen := t.lastSeen[w].Load(); !t.dead[w].Load() && !t.draining[w].Load() && seen >= 0 && now-seen <= t.silence {
			someoneActive = true
			break
		}
	}
	if !someoneActive {
		return nil
	}
	var out []int
	for w := range t.lastSeen {
		if seen := t.lastSeen[w].Load(); !t.dead[w].Load() && !t.draining[w].Load() && seen >= 0 && now-seen > t.silence {
			out = append(out, w)
		}
	}
	return out
}
