package faults

import (
	"fmt"
	"math/rand"
	"sync"

	"switchml/internal/netsim"
)

// Verdict is a packet injector's decision for one datagram.
type Verdict int

const (
	// Pass delivers the datagram untouched.
	Pass Verdict = iota
	// Drop loses the datagram.
	Drop
	// Duplicate delivers the datagram twice.
	Duplicate
	// Corrupt mangles the datagram's bytes before delivery; the
	// receiver's checksum is expected to reject it.
	Corrupt
)

// String returns the verdict's name.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// InjectorConfig parameterizes a deterministic datagram fault
// process for the real UDP path, where the kernel network is (on
// loopback) effectively perfect and faults must be injected above the
// socket.
type InjectorConfig struct {
	// Seed drives the deterministic random process.
	Seed int64
	// DropRate is the Bernoulli loss probability in [0,1).
	DropRate float64
	// Burst, when non-nil, replaces DropRate with a Gilbert–Elliott
	// burst loss chain.
	Burst *netsim.GEConfig
	// DupRate is the probability a datagram is delivered twice.
	DupRate float64
	// CorruptRate is the probability a datagram is mangled in flight.
	CorruptRate float64
}

// InjectorStats counts an injector's decisions.
type InjectorStats struct {
	Judged, Dropped, Duplicated, Corrupted uint64
}

// PacketInjector makes seeded per-datagram fault decisions. It is
// safe for concurrent use: transports consult it from serve loops and
// client goroutines alike. Decisions are deterministic in sequence
// (the i-th judged datagram always gets the same verdict for a given
// seed), which is as reproducible as wall-clock transports get.
type PacketInjector struct {
	mu    sync.Mutex
	cfg   InjectorConfig
	rng   *rand.Rand
	ge    *netsim.GilbertElliott
	stats InjectorStats
}

// NewPacketInjector validates cfg and returns an injector.
func NewPacketInjector(cfg InjectorConfig) (*PacketInjector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropRate", cfg.DropRate}, {"DupRate", cfg.DupRate}, {"CorruptRate", cfg.CorruptRate}} {
		if p.v < 0 || p.v >= 1 {
			return nil, fmt.Errorf("faults: injector %s=%v out of [0,1)", p.name, p.v)
		}
	}
	pi := &PacketInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Burst != nil {
		ge, err := netsim.NewGilbertElliott(*cfg.Burst)
		if err != nil {
			return nil, err
		}
		pi.ge = ge
	}
	return pi, nil
}

// Judge decides the fate of the next datagram.
func (pi *PacketInjector) Judge() Verdict {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	pi.stats.Judged++
	dropped := false
	if pi.ge != nil {
		dropped = pi.ge.Drop(pi.rng)
	} else if pi.cfg.DropRate > 0 {
		dropped = pi.rng.Float64() < pi.cfg.DropRate
	}
	if dropped {
		pi.stats.Dropped++
		return Drop
	}
	if pi.cfg.CorruptRate > 0 && pi.rng.Float64() < pi.cfg.CorruptRate {
		pi.stats.Corrupted++
		return Corrupt
	}
	if pi.cfg.DupRate > 0 && pi.rng.Float64() < pi.cfg.DupRate {
		pi.stats.Duplicated++
		return Duplicate
	}
	return Pass
}

// Mangle corrupts buf in place (deterministically, from the seeded
// stream) the way a bad cable or DMA fault would: a single byte is
// xored. Callers send the mangled bytes so the receiver's checksum
// path is exercised end to end.
func (pi *PacketInjector) Mangle(buf []byte) {
	if len(buf) == 0 {
		return
	}
	pi.mu.Lock()
	i := pi.rng.Intn(len(buf))
	pi.mu.Unlock()
	buf[i] ^= 0x20 | byte(i)&0x5f | 1
}

// Stats returns a snapshot of the injector's decision counters.
func (pi *PacketInjector) Stats() InjectorStats {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return pi.stats
}
