package faults

import (
	"testing"

	"switchml/internal/netsim"
	"switchml/internal/packet"
)

func TestFaultScenarioValidate(t *testing.T) {
	good := Scenario{Actions: []Action{
		{Kind: CrashWorker, Worker: 2, At: 100},
		{Kind: RestartWorker, Worker: 2, At: 200, Step: 3},
		{Kind: RestartSwitch, At: 50},
		{Kind: LinkDown, Worker: -1, At: 10},
		{Kind: LinkUp, Worker: 1, At: 20},
		{Kind: SetLossRate, Worker: -1, Rate: 0.01},
		{Kind: SetBurstLoss, Worker: 0, Burst: netsim.GEConfig{PGoodToBad: 0.01, PBadToGood: 0.2, LossBad: 0.9}},
	}}
	if err := good.Validate(8); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := []Scenario{
		{Actions: []Action{{Kind: CrashWorker, Worker: 8}}},
		{Actions: []Action{{Kind: CrashWorker, Worker: -1}}},
		{Actions: []Action{{Kind: SetLossRate, Worker: 0, Rate: 1.5}}},
		{Actions: []Action{{Kind: ActionKind(99)}}},
		{Actions: []Action{{Kind: CrashWorker, Worker: 0, At: -1}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(8); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func TestFaultScenarioStepAnchors(t *testing.T) {
	sc := Scenario{Actions: []Action{
		{Kind: CrashWorker, Worker: 0, At: 5},
		{Kind: CrashWorker, Worker: 1, At: 7, Step: 2},
		{Kind: RestartSwitch, At: 9, Step: 2},
	}}
	if got := len(sc.Absolute()); got != 1 {
		t.Fatalf("Absolute() returned %d actions, want 1", got)
	}
	if got := len(sc.ForStep(2)); got != 2 {
		t.Fatalf("ForStep(2) returned %d actions, want 2", got)
	}
	if got := len(sc.ForStep(3)); got != 0 {
		t.Fatalf("ForStep(3) returned %d actions, want 0", got)
	}
}

func TestFaultTrackerVerdicts(t *testing.T) {
	const silence = 1000
	tr := NewTracker(3, silence)

	// Nobody seen: the job is idle, nobody is suspect.
	if s := tr.Suspects(5000); s != nil {
		t.Fatalf("suspects with no progress: %v", s)
	}

	tr.Touch(0, 100)
	tr.Touch(1, 120)
	tr.Touch(2, 110)
	// All within threshold.
	if s := tr.Suspects(600); s != nil {
		t.Fatalf("suspects while everyone is fresh: %v", s)
	}

	// Worker 2 goes silent while 0 and 1 progress.
	tr.Touch(0, 2000)
	tr.Touch(1, 2000)
	s := tr.Suspects(2100)
	if len(s) != 1 || s[0] != 2 {
		t.Fatalf("suspects = %v, want [2]", s)
	}

	// If everyone goes silent (barrier, job done), nobody is suspect.
	if s := tr.Suspects(5000); s != nil {
		t.Fatalf("suspects while job idle: %v", s)
	}

	// Retired workers are not re-suspected, and their touches are
	// ignored.
	tr.MarkDead(2)
	tr.Touch(2, 2500)
	tr.Touch(0, 2500)
	if s := tr.Suspects(2600); s != nil {
		t.Fatalf("suspects after retiring 2: %v", s)
	}
	if !tr.Dead(2) || tr.AliveCount() != 2 {
		t.Fatalf("dead bookkeeping wrong: dead(2)=%v alive=%d", tr.Dead(2), tr.AliveCount())
	}
	tr.MarkAlive(2, 3000)
	if tr.Dead(2) || tr.LastSeen(2) != 3000 {
		t.Fatalf("MarkAlive did not re-admit: dead=%v seen=%d", tr.Dead(2), tr.LastSeen(2))
	}
}

func TestFaultPacketInjectorDeterministic(t *testing.T) {
	cfg := InjectorConfig{Seed: 42, DropRate: 0.2, DupRate: 0.1, CorruptRate: 0.1}
	a, err := NewPacketInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewPacketInjector(cfg)
	var verdicts [500]Verdict
	for i := range verdicts {
		verdicts[i] = a.Judge()
		if got := b.Judge(); got != verdicts[i] {
			t.Fatalf("verdict %d diverged: %v vs %v", i, verdicts[i], got)
		}
	}
	st := a.Stats()
	if st.Judged != 500 {
		t.Fatalf("judged %d, want 500", st.Judged)
	}
	if st.Dropped == 0 || st.Duplicated == 0 || st.Corrupted == 0 {
		t.Fatalf("expected all fault classes to fire over 500 draws: %+v", st)
	}
	if st.Dropped+st.Duplicated+st.Corrupted > 500 {
		t.Fatalf("counters exceed judged: %+v", st)
	}
}

func TestFaultInjectorMangleBreaksChecksum(t *testing.T) {
	pi, err := NewPacketInjector(InjectorConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := packet.NewUpdate(1, 0, 0, 3, 64, []int32{1, 2, 3, 4})
	for i := 0; i < 50; i++ {
		buf := p.Marshal()
		pi.Mangle(buf)
		if _, err := packet.Unmarshal(buf); err == nil {
			t.Fatalf("mangled datagram %d passed the checksum", i)
		}
	}
}

func TestFaultInjectorBurstLoss(t *testing.T) {
	pi, err := NewPacketInjector(InjectorConfig{
		Seed:  1,
		Burst: &netsim.GEConfig{PGoodToBad: 0.02, PBadToGood: 0.25, LossGood: 0, LossBad: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Burst loss must produce runs of consecutive drops.
	run, maxRun, drops := 0, 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		if pi.Judge() == Drop {
			drops++
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if drops == 0 {
		t.Fatal("burst chain never dropped")
	}
	if maxRun < 3 {
		t.Fatalf("max drop run %d; burst loss should produce runs", maxRun)
	}
	mean := netsim.GEConfig{PGoodToBad: 0.02, PBadToGood: 0.25, LossGood: 0, LossBad: 1}.MeanLoss()
	got := float64(drops) / n
	if got < mean/2 || got > mean*2 {
		t.Fatalf("empirical loss %v too far from stationary mean %v", got, mean)
	}
}
