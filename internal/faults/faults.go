// Package faults is the deterministic fault-injection substrate for
// the repo's failure story (§5.6 of the paper): scripted scenarios
// drive worker crashes and restarts, switch restarts that wipe
// register state, link blackout windows, burst loss, duplication and
// corruption — reproducibly, from a seed — while the liveness tracker
// and packet injector give the simulated rack and the real UDP
// transport a shared vocabulary for detecting and surviving them.
//
// The package deliberately has no dependency on the hosts it serves:
// internal/rack schedules Actions on its virtual clock, and
// internal/transport consults the PacketInjector per datagram and the
// Tracker per liveness sweep. Every fault and recovery transition is
// traced through internal/telemetry by the host that performs it, so
// crash → detect → reconfigure → resume timelines are visible in
// Chrome traces.
//
//switchml:deterministic
package faults

import (
	"fmt"

	"switchml/internal/netsim"
)

// ActionKind enumerates scripted fault actions.
type ActionKind int

const (
	// CrashWorker kills a worker host: it stops sending, receiving
	// and timing out, as a process crash or machine failure would.
	CrashWorker ActionKind = iota + 1
	// RestartWorker revives a crashed worker host. The revived worker
	// rejoins at the next job reconfiguration (it cannot re-enter a
	// collective in flight; the paper restarts from a checkpoint).
	RestartWorker
	// RestartSwitch restarts the switch, wiping all register state
	// (pools, bitmaps, counters) mid-job.
	RestartSwitch
	// LinkDown starts a blackout window on a worker's access links
	// (both directions).
	LinkDown
	// LinkUp ends a blackout window.
	LinkUp
	// SetLossRate changes the Bernoulli loss rate of a worker's access
	// links (both directions), or of every link when Worker is -1.
	SetLossRate
	// SetBurstLoss installs a Gilbert–Elliott burst loss process on a
	// worker's access links (both directions), or on every link when
	// Worker is -1.
	SetBurstLoss
	// KillSwitch fails the switch's aggregation program: update packets
	// are blackholed and probes go unanswered, but the crossbar keeps
	// forwarding host-to-host traffic (the failure mode ATP's fallback
	// targets — the aggregation service dies, the network does not).
	KillSwitch
	// ReviveSwitch brings a killed switch's aggregation program back
	// with wiped register state; jobs return to it only after the
	// health monitor's probation window passes.
	ReviveSwitch
	// JoinWorker gracefully admits a worker into the running job: the
	// target must be outside the current membership (never started, or
	// previously departed); it is fenced in at the next step boundary
	// under a bumped generation.
	JoinWorker
	// LeaveWorker gracefully retires a worker: it announces departure,
	// drains its in-flight window to the step boundary, and leaves
	// without tripping liveness detection — the voluntary counterpart
	// of CrashWorker.
	LeaveWorker
	// KillStandby fails a warm-standby switch's aggregation program
	// (Worker carries the standby rank, 1-based). A job homed on that
	// standby descends the failover ladder; one still homed on the
	// primary notices nothing.
	KillStandby
	// ReviveStandby brings a killed standby's aggregation program back
	// with wiped register state (Worker carries the standby rank,
	// 1-based); the next adoption fences it under a fresh generation.
	ReviveStandby
)

// String returns the action kind's name.
func (k ActionKind) String() string {
	switch k {
	case CrashWorker:
		return "crash-worker"
	case RestartWorker:
		return "restart-worker"
	case RestartSwitch:
		return "restart-switch"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SetLossRate:
		return "set-loss-rate"
	case SetBurstLoss:
		return "set-burst-loss"
	case KillSwitch:
		return "kill-switch"
	case ReviveSwitch:
		return "revive-switch"
	case JoinWorker:
		return "join-worker"
	case LeaveWorker:
		return "leave-worker"
	case KillStandby:
		return "kill-standby"
	case ReviveStandby:
		return "revive-standby"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one scripted fault event.
type Action struct {
	// Kind selects the fault.
	Kind ActionKind
	// At is the virtual time of the action. When Step is zero it is
	// absolute; when Step is positive it is relative to the start of
	// aggregation step number Step (1-based), which is how "crash
	// worker 2 at step 3, 40 µs in" is scripted deterministically.
	At netsim.Time
	// Step selects the aggregation step (AllReduce call) the action
	// is anchored to; zero anchors to absolute virtual time.
	Step int
	// Worker is the target worker id; -1 targets every link for the
	// link-scoped actions and is ignored by RestartSwitch.
	Worker int
	// Rate is the loss rate for SetLossRate.
	Rate float64
	// Burst is the chain configuration for SetBurstLoss.
	Burst netsim.GEConfig
}

// Scenario is a deterministic fault script.
type Scenario struct {
	// Actions are applied at their trigger times; order within the
	// slice is preserved for simultaneous actions.
	Actions []Action
}

// Validate checks every action against the job's worker count.
func (s *Scenario) Validate(workers int) error {
	for i, a := range s.Actions {
		if a.At < 0 {
			return fmt.Errorf("faults: action %d (%v) has negative time %v", i, a.Kind, a.At)
		}
		if a.Step < 0 {
			return fmt.Errorf("faults: action %d (%v) has negative step %d", i, a.Kind, a.Step)
		}
		switch a.Kind {
		case CrashWorker, RestartWorker, JoinWorker, LeaveWorker:
			if a.Worker < 0 || a.Worker >= workers {
				return fmt.Errorf("faults: action %d (%v) targets worker %d of %d", i, a.Kind, a.Worker, workers)
			}
		case RestartSwitch, KillSwitch, ReviveSwitch:
		case KillStandby, ReviveStandby:
			// Worker carries the standby rank; the host validates the
			// upper bound against its own standby count.
			if a.Worker < 1 {
				return fmt.Errorf("faults: action %d (%v) targets standby rank %d; ranks are 1-based", i, a.Kind, a.Worker)
			}
		case LinkDown, LinkUp, SetLossRate, SetBurstLoss:
			if a.Worker < -1 || a.Worker >= workers {
				return fmt.Errorf("faults: action %d (%v) targets worker %d of %d", i, a.Kind, a.Worker, workers)
			}
			if a.Kind == SetLossRate && (a.Rate < 0 || a.Rate >= 1) {
				return fmt.Errorf("faults: action %d loss rate %v out of [0,1)", i, a.Rate)
			}
		default:
			return fmt.Errorf("faults: action %d has unknown kind %d", i, int(a.Kind))
		}
	}
	return nil
}

// ForStep returns the actions anchored to the given step (1-based),
// in script order.
func (s *Scenario) ForStep(step int) []Action {
	var out []Action
	for _, a := range s.Actions {
		if a.Step == step {
			out = append(out, a)
		}
	}
	return out
}

// Absolute returns the actions anchored to absolute virtual time, in
// script order.
func (s *Scenario) Absolute() []Action { return s.ForStep(0) }
