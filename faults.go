package switchml

import (
	"errors"
	"time"

	"switchml/internal/faults"
	"switchml/internal/netsim"
	"switchml/internal/rack"
	"switchml/internal/transport"
)

// This file is the public face of the fault-injection and failure-
// recovery machinery (§5.6 of the paper): scripted fault scenarios
// for the simulator, seeded packet injectors and liveness detection
// for the real UDP deployment.

// FaultKind enumerates scripted fault actions for SimParams.Faults.
type FaultKind int

const (
	// FaultCrashWorker kills a worker host: it stops sending,
	// receiving and timing out, as a process crash would.
	FaultCrashWorker FaultKind = iota + 1
	// FaultRestartWorker revives a crashed worker; it rejoins when the
	// job restarts at the next aggregation step boundary.
	FaultRestartWorker
	// FaultRestartSwitch reboots the switch, wiping all register state
	// (pools, bitmaps, counters) mid-job.
	FaultRestartSwitch
	// FaultLinkDown starts a blackout window on the target worker's
	// access links (both directions; Worker -1 targets every link).
	FaultLinkDown
	// FaultLinkUp ends a blackout window.
	FaultLinkUp
	// FaultSetLossRate changes the Bernoulli loss rate of the target
	// worker's access links mid-run.
	FaultSetLossRate
	// FaultSetBurstLoss installs a Gilbert–Elliott burst-loss process
	// on the target worker's access links mid-run.
	FaultSetBurstLoss
	// FaultKillSwitch fails the switch's aggregation program: update
	// packets are silently dropped and probes go unanswered, but the
	// crossbar keeps forwarding host-to-host traffic — the failure mode
	// the degradation controller (SimParams.Health) rides out by
	// falling back to host all-reduce. Worker is ignored.
	FaultKillSwitch
	// FaultReviveSwitch brings a killed aggregation program back; the
	// degraded job probes it and, after SimParams.Health.Probation
	// consecutive answers, fails back to the switch path.
	FaultReviveSwitch
	// FaultJoinWorker gracefully admits a worker into the running job.
	// The target must be outside the current membership — listed in
	// SimParams.Detached, or previously departed — and is fenced in at
	// the next step boundary under a bumped generation, resuming at
	// the global stream frontier.
	FaultJoinWorker
	// FaultLeaveWorker gracefully retires a worker: it finishes its
	// in-flight step (the drain), then departs at the step boundary
	// without ever tripping the failure detector — the voluntary,
	// telemetry-distinct counterpart of FaultCrashWorker.
	FaultLeaveWorker
	// FaultKillStandby fails a warm-standby aggregation program
	// (requires SimParams.StandbySwitches). Worker carries the standby
	// rank, 1-based: rank 1 is the first standby behind the primary. A
	// job homed on that rung re-enters the failover ladder; a job
	// homed elsewhere only notices if it later descends onto the dead
	// rung.
	FaultKillStandby
	// FaultReviveStandby brings a killed standby's aggregation program
	// back with wiped register state. Worker is the standby rank,
	// 1-based.
	FaultReviveStandby
)

// FaultAction is one scripted fault event.
type FaultAction struct {
	// Kind selects the fault.
	Kind FaultKind
	// At is the trigger time. With Step zero it is absolute virtual
	// time; with Step positive it is relative to the start of that
	// aggregation step (1-based), so "crash worker 2 at step 3, 40 µs
	// in" is scripted deterministically.
	At time.Duration
	// Step anchors At to an aggregation step; zero means absolute.
	Step int
	// Worker is the target worker id; -1 targets every link for the
	// link-scoped actions and is ignored by FaultRestartSwitch. For
	// FaultKillStandby and FaultReviveStandby it carries the standby
	// rank instead (1-based).
	Worker int
	// Rate is the loss rate for FaultSetLossRate.
	Rate float64
	// Burst is the chain for FaultSetBurstLoss.
	Burst BurstLossParams
}

// FaultScenario is a deterministic fault script: every action fires
// at its scripted virtual time, so a given (scenario, seed) pair
// replays bit-identically.
type FaultScenario struct {
	Actions []FaultAction
}

func (s *FaultScenario) internal() *faults.Scenario {
	if s == nil {
		return nil
	}
	out := &faults.Scenario{Actions: make([]faults.Action, len(s.Actions))}
	for i, a := range s.Actions {
		out.Actions[i] = faults.Action{
			Kind:   faults.ActionKind(a.Kind),
			At:     netsim.Time(a.At),
			Step:   a.Step,
			Worker: a.Worker,
			Rate:   a.Rate,
			Burst:  a.Burst.internal(),
		}
	}
	return out
}

// BurstLossParams configures a Gilbert–Elliott two-state burst-loss
// chain: a good state with rare loss and a bad state with heavy loss,
// with the given transition probabilities evaluated per packet. The
// stationary mean loss rate is
// LossGood·P(good) + LossBad·P(bad) with
// P(bad) = PGoodToBad/(PGoodToBad+PBadToGood).
type BurstLossParams struct {
	// PGoodToBad is the per-packet probability of entering a burst.
	PGoodToBad float64
	// PBadToGood is the per-packet probability of a burst ending.
	PBadToGood float64
	// LossGood is the drop probability in the good state.
	LossGood float64
	// LossBad is the drop probability in the bad state.
	LossBad float64
}

func (b BurstLossParams) internal() netsim.GEConfig {
	return netsim.GEConfig{
		PGoodToBad: b.PGoodToBad,
		PBadToGood: b.PBadToGood,
		LossGood:   b.LossGood,
		LossBad:    b.LossBad,
	}
}

// LivenessParams tunes the failure detector: a worker silent past
// SilenceAfter — while at least one peer keeps making progress — is
// declared failed, evicted from the membership, and the survivors are
// resumed from the global progress frontier under a new job
// generation.
type LivenessParams struct {
	// SilenceAfter is the silence threshold. Zero selects the host's
	// default (16×RTO in the simulator, 2 s over UDP). It should
	// comfortably exceed the maximum retransmission backoff (64×RTO).
	SilenceAfter time.Duration
	// CheckEvery is the detector sweep period (default
	// SilenceAfter/4). Detection latency is at most
	// SilenceAfter+CheckEvery past the failed worker's last packet.
	CheckEvery time.Duration
}

func (l *LivenessParams) rack() *rack.LivenessConfig {
	if l == nil {
		return nil
	}
	return &rack.LivenessConfig{
		SilenceAfter: netsim.Time(l.SilenceAfter),
		CheckEvery:   netsim.Time(l.CheckEvery),
	}
}

func (l *LivenessParams) transport() *transport.LivenessConfig {
	if l == nil {
		return nil
	}
	return &transport.LivenessConfig{
		SilenceAfter: l.SilenceAfter,
		CheckEvery:   l.CheckEvery,
	}
}

// ErrSwitchUnavailable is the typed, retryable verdict for an
// aggregation fabric that stopped answering: the switch program died
// (or the UDP aggregator went silent) and no fallback was available
// to ride it out. It is distinct from input errors — the tensors were
// fine; retry once the fabric (or a Health fallback) is back. Test
// with errors.Is.
var ErrSwitchUnavailable = errors.New("switchml: switch unavailable")

// fabricErr attaches ErrSwitchUnavailable to errors whose root cause
// is a dead aggregation fabric, preserving the full original chain.
func fabricErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, rack.ErrSwitchDown) || errors.Is(err, transport.ErrAggregatorSilent) {
		return &switchUnavailableError{err}
	}
	return err
}

type switchUnavailableError struct{ err error }

func (e *switchUnavailableError) Error() string { return e.err.Error() }
func (e *switchUnavailableError) Unwrap() []error {
	return []error{e.err, ErrSwitchUnavailable}
}

// HealthParams tunes the switch health monitor and degradation
// controller: the subsystem that keeps a job running when the switch
// itself dies. It is distinct from LivenessParams, which suspects
// individual silent workers; health suspects the fabric when no
// aggregation results flow anywhere while updates are outstanding.
// On suspicion the job degrades to host ring all-reduce at a chunk
// boundary (no tensor is ever half-aggregated by two fabrics), probes
// the switch while degraded, and fails back after Probation
// consecutive answers.
type HealthParams struct {
	// SuspectAfter is how long the switch path may stay completely
	// silent before the job degrades; zero selects 8×RTO. It doubles
	// as hysteresis: a switch that answers even occasionally never
	// trips it.
	SuspectAfter time.Duration
	// ProbeEvery is the probe period while degraded; zero selects
	// SuspectAfter/4.
	ProbeEvery time.Duration
	// Probation is the number of consecutive answered probes required
	// before failing back; zero selects 3, negative pins the job in
	// degraded mode forever (the pure host-all-reduce baseline).
	Probation int
	// BurstBytes segments the degraded-mode ring transfers; zero
	// selects 64 KiB.
	BurstBytes int
}

func (h *HealthParams) rack() *rack.HealthConfig {
	if h == nil {
		return nil
	}
	return &rack.HealthConfig{
		SuspectAfter: netsim.Time(h.SuspectAfter),
		ProbeEvery:   netsim.Time(h.ProbeEvery),
		Probation:    h.Probation,
		BurstBytes:   h.BurstBytes,
	}
}

// FaultInjection seeds a deterministic per-datagram fault process for
// the UDP deployment: loopback networks never drop, duplicate or
// corrupt, so chaos tests inject those faults at the sockets instead.
type FaultInjection struct {
	// Seed drives the injector's private random stream.
	Seed int64
	// DropRate is the per-datagram drop probability.
	DropRate float64
	// Burst, when non-nil, replaces DropRate with a Gilbert–Elliott
	// burst process.
	Burst *BurstLossParams
	// DupRate is the per-datagram duplication probability.
	DupRate float64
	// CorruptRate is the per-datagram corruption probability;
	// corrupted datagrams are caught by the packet checksum and
	// dropped by the receiver.
	CorruptRate float64
}

func (f *FaultInjection) internal() *faults.InjectorConfig {
	if f == nil {
		return nil
	}
	cfg := &faults.InjectorConfig{
		Seed:        f.Seed,
		DropRate:    f.DropRate,
		DupRate:     f.DupRate,
		CorruptRate: f.CorruptRate,
	}
	if f.Burst != nil {
		ge := f.Burst.internal()
		cfg.Burst = &ge
	}
	return cfg
}
