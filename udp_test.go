package switchml

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestUDPDeployment(t *testing.T) {
	const n = 3
	agg, err := ListenAggregator("127.0.0.1:0", AggregatorParams{Workers: n, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	const d = 3000
	// Gradient entries reach ~752; Theorem 2 gives the largest safe
	// scale for n=3 (a naive 1e6 overflows the aggregate and wraps).
	scale, err := MaxSafeScale(n, 800)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	outs := make([][]float32, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			peer, err := DialAggregator(agg.Addr(), PeerParams{
				ID: i, Workers: n, PoolSize: 8, Scale: scale,
				RTO: 20 * time.Millisecond, Timeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer peer.Close()
			u := make([]float32, d)
			for j := range u {
				u[j] = float32(i) + float32(j)*0.25
			}
			outs[i], errs[i] = peer.AllReduceFloat32(u)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("peer %d: %v", i, errs[i])
		}
		for j := 0; j < d; j++ {
			want := float64(0+1+2) + 3*float64(j)*0.25
			if diff := math.Abs(float64(outs[i][j]) - want); diff > 3e-5 {
				t.Fatalf("peer %d elem %d: got %v want %v", i, j, outs[i][j], want)
			}
		}
	}
}

func TestUDPPeerValidation(t *testing.T) {
	if _, err := ListenAggregator("127.0.0.1:0", AggregatorParams{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := DialAggregator("127.0.0.1:1", PeerParams{ID: 0, Workers: 1, Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
	peer, err := DialAggregator("127.0.0.1:1", PeerParams{ID: 0, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if _, err := peer.AllReduceFloat32([]float32{1}); err == nil {
		t.Error("float32 without scale accepted")
	}
}
