# The `check` target is the tier-1 gate (see ROADMAP.md): vet, lint
# (the project's own static-analysis suite), build, the full test
# suite, and the race detector over every package with real
# concurrency — the UDP transport, the telemetry registry, the rack
# host timers, the sharded aggregation core, the event scheduler and
# the public session/cluster API. CI and pre-commit should run
# `make check`.

GO ?= go

# Packages whose tests exercise concurrent goroutines against shared
# state; they must stay clean under the race detector.
RACE_PKGS = ./internal/transport ./internal/telemetry ./internal/rack \
	./internal/core ./internal/netsim ./internal/netio .

.PHONY: check vet lint lint-one lint-allows lint-sarif build test race chaos fuzz bench bench-smoke top-smoke flight-check elastic-smoke failover-smoke examples clean

check: vet lint build test race chaos bench-smoke top-smoke flight-check elastic-smoke failover-smoke

vet:
	$(GO) vet ./...

# Project-invariant static analysis (cmd/switchml-vet): hot-path
# allocation freedom, simulation determinism, atomics discipline,
# wire-width checks, protocol-dispatch exhaustiveness, pooled-buffer
# ownership, goroutine lifecycles and suppression hygiene. Any finding
# fails the build.
lint:
	$(GO) run ./cmd/switchml-vet

# One analyzer, for CI matrix legs: make lint-one ANALYZER=bufown
lint-one:
	$(GO) run ./cmd/switchml-vet -run $(ANALYZER)

# Suppression audit: every //switchml:allow with its justification.
# (The suppress analyzer separately fails `make lint` on stale ones.)
lint-allows:
	$(GO) run ./cmd/switchml-vet -allows

# SARIF artifact for CI annotation. The report is written even when
# there are findings; `make lint` is the gate that fails on them.
lint-sarif:
	$(GO) run ./cmd/switchml-vet -sarif > switchml-vet.sarif || true

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Chaos gate: every fault-injection and recovery test (worker crash,
# switch restart, switch kill with fallback/failback, burst loss,
# injector chaos) under the race detector.
chaos:
	$(GO) test -race -run Fault ./internal/rack ./internal/transport .

# Short fuzz pass over the wire-format codec; corrupted and adversarial
# datagrams must never crash or round-trip incorrectly.
fuzz:
	$(GO) test -fuzz=FuzzCodec -fuzztime=10s ./internal/packet

# Quick-look evaluation run (scaled-down tensors).
bench:
	$(GO) run ./cmd/switchml-bench -scale 100

# Hot-path gate: the zero-allocation assertions (packet codec, switch
# ingress, sharded dispatch, event scheduling, batched socket I/O and
# the aggregator's stage/flush cycle) plus a smoke run of the hotpath
# micro-benchmarks. Regenerate the committed baseline with:
#   $(GO) run ./cmd/switchml-bench -scale 1 -artifacts . hotpath
bench-smoke:
	$(GO) test -run 'ZeroAlloc|Hotpath' ./internal/packet ./internal/core ./internal/netsim ./internal/netio ./internal/transport ./internal/bench

# Observability smoke: switchml-top boots an in-process cluster over
# loopback UDP, polls its own debug endpoints and validates the JSON
# cluster view end to end.
top-smoke:
	$(GO) run ./cmd/switchml-top -selftest -json > /dev/null

# Flight-recorder gate: a scripted switch-kill must dump a
# schema-valid incident file (trigger event, metric deltas, per-slot
# state) — the acceptance check for the fault flight recorder.
flight-check:
	$(GO) test -run 'TestFlightIncident|TestFlightRecorder' . ./internal/telemetry

# Elastic-membership gate: scripted join/leave and quorum runs on the
# simulator CLI (each self-verifies its final aggregate), then a live
# UDP cluster where a worker joins a running job over the membership
# fence and drains gracefully mid-training.
elastic-smoke:
	$(GO) run ./cmd/switchml-sim -workers 4 -mb 0.01 -steps 6 -detached 3 -join-at 3@2 -leave-at 1@4 > /dev/null
	$(GO) run ./cmd/switchml-sim -workers 4 -mb 0.01 -steps 4 -quorum 3 -straggler-gbps 1 -late-policy reconcile > /dev/null
	./scripts/elastic_smoke.sh

# Warm-standby failover gate: the three-tier defense ladder in both
# substrates. The simulator leg kills the primary mid-step — the
# silence verdict re-homes the job onto the standby rung and the
# revive climbs it back — and must log the whole cycle ending on the
# primary. The live leg boots a real UDP cluster (primary + standby
# aggregators, three workers) and runs the scripted -down-after drill
# through the adoption roll call and fail-up probation.
failover-smoke:
	$(GO) run ./cmd/switchml-sim -workers 4 -mb 1 -steps 12 -standby 1 \
		-switch-kill 100us -switch-revive 10ms | grep "home rank now 0"
	./scripts/failover_smoke.sh

# Build every example program.
examples:
	$(GO) build ./examples/...

clean:
	$(GO) clean ./...
