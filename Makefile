# The `check` target is the tier-1 gate (see ROADMAP.md): vet, build,
# the full test suite, and the race detector over every package with
# real concurrency — the UDP transport, the telemetry registry, the
# rack host timers and the public session/cluster API. CI and
# pre-commit should run `make check`.

GO ?= go

# Packages whose tests exercise concurrent goroutines against shared
# state; they must stay clean under the race detector.
RACE_PKGS = ./internal/transport ./internal/telemetry ./internal/rack .

.PHONY: check vet build test race bench examples clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Quick-look evaluation run (scaled-down tensors).
bench:
	$(GO) run ./cmd/switchml-bench -scale 100

# Build every example program.
examples:
	$(GO) build ./examples/...

clean:
	$(GO) clean ./...
