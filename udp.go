package switchml

import (
	"errors"
	"fmt"
	"time"

	"switchml/internal/core"
	"switchml/internal/packet"
	"switchml/internal/quant"
	"switchml/internal/telemetry"
	"switchml/internal/transport"
)

// This file exposes the real-network deployment: a software
// "parameter aggregator" (the paper's §6 alternative deployment
// model) and worker clients, both speaking the SwitchML wire format
// over UDP.

// Aggregator is a UDP software aggregator hosting one job's pool.
type Aggregator struct {
	inner      *transport.Aggregator
	debugClose func() error
}

// AggregatorParams configures ListenAggregator.
type AggregatorParams struct {
	// Workers is n; every slot completes after n contributions.
	Workers int
	// PoolSize is s (default 64).
	PoolSize int
	// SlotElems is k (default 32).
	SlotElems int
	// JobID tags the pool for multi-tenancy.
	JobID uint16
	// Liveness, when non-nil, enables the failure detector: silent
	// workers are evicted and survivors are resumed from the global
	// progress frontier under a new job generation (§5.6). Idle
	// workers should send heartbeats (PeerParams.Heartbeat).
	Liveness *LivenessParams
	// Inject, when non-nil, applies seeded loss, duplication and
	// corruption to outgoing result datagrams (chaos testing).
	Inject *FaultInjection
}

func (p *AggregatorParams) fill() {
	if p.PoolSize == 0 {
		p.PoolSize = 64
	}
	if p.SlotElems == 0 {
		p.SlotElems = packet.DefaultElems
	}
}

// ListenAggregator binds addr (e.g. ":5555" or "127.0.0.1:0") and
// serves aggregation until Close.
func ListenAggregator(addr string, params AggregatorParams) (*Aggregator, error) {
	params.fill()
	inner, err := transport.NewAggregator(transport.AggregatorConfig{
		Addr: addr,
		Switch: core.SwitchConfig{
			Workers:      params.Workers,
			PoolSize:     params.PoolSize,
			SlotElems:    params.SlotElems,
			LossRecovery: true,
			JobID:        params.JobID,
		},
		Liveness: params.Liveness.transport(),
		Inject:   params.Inject.internal(),
	})
	if err != nil {
		return nil, err
	}
	return &Aggregator{inner: inner}, nil
}

// Addr returns the bound address, "host:port".
func (a *Aggregator) Addr() string { return a.inner.Addr().String() }

// ServeDebug starts an HTTP introspection listener on addr (e.g.
// "localhost:6060" or ":0") serving /metrics (plain-text counter
// dump), /debug/vars (expvar) and /debug/pprof/. It returns the bound
// address; the listener stops when the aggregator is closed. Call at
// most once.
func (a *Aggregator) ServeDebug(addr string) (string, error) {
	bound, closeFn, err := telemetry.ServeDebug(addr, a.inner.Registry())
	if err != nil {
		return "", err
	}
	a.debugClose = closeFn
	return bound, nil
}

// Close stops serving (and the debug listener, if one was started).
func (a *Aggregator) Close() error {
	if a.debugClose != nil {
		a.debugClose()
		a.debugClose = nil
	}
	return a.inner.Close()
}

// Stats returns the aggregation pool's protocol counters.
func (a *Aggregator) Stats() AggregatorStats {
	st := a.inner.Stats()
	return AggregatorStats{
		Updates:               st.Updates,
		Completions:           st.Completions,
		IgnoredDuplicates:     st.IgnoredDuplicates,
		ResultRetransmissions: st.ResultRetransmissions,
		StaleUpdates:          st.StaleUpdates,
		Rejected:              st.Rejected,
	}
}

// Reset clears the pool and forgets worker addresses, preparing the
// aggregator for a restarted job.
func (a *Aggregator) Reset() { a.inner.Reset() }

// Alive reports whether worker w is still part of the job; without
// AggregatorParams.Liveness every configured worker counts as alive.
func (a *Aggregator) Alive(w int) bool { return a.inner.Alive(w) }

// Epoch returns the current job generation; it starts at JobID and is
// bumped by every recovery.
func (a *Aggregator) Epoch() uint16 { return a.inner.Epoch() }

// AggregatorStats are the switch-side protocol counters.
type AggregatorStats struct {
	// Updates is the number of update packets processed.
	Updates uint64
	// Completions is the number of finished slot aggregations.
	Completions uint64
	// IgnoredDuplicates counts retransmitted updates for slots still
	// aggregating.
	IgnoredDuplicates uint64
	// ResultRetransmissions counts unicast result replies served from
	// the shadow copy.
	ResultRetransmissions uint64
	// StaleUpdates counts old-phase packets dropped by the
	// monotonic-offset hardening.
	StaleUpdates uint64
	// Rejected counts malformed packets.
	Rejected uint64
}

// Peer is a worker endpoint attached to a remote Aggregator.
type Peer struct {
	inner      *transport.Client
	scale      *quant.FixedPoint
	n          int
	debugClose func() error
}

// PeerParams configures DialAggregator. Workers, PoolSize, SlotElems
// and JobID must match the aggregator's parameters.
type PeerParams struct {
	// ID is this worker's rank in [0, Workers).
	ID int
	// Workers is n.
	Workers int
	// PoolSize is s (default 64).
	PoolSize int
	// SlotElems is k (default 32).
	SlotElems int
	// JobID tags packets for multi-tenancy.
	JobID uint16
	// Scale is the fixed-point factor for float32 all-reduce; zero
	// disables the float32 methods.
	Scale float64
	// RTO is the retransmission timeout (default 50 ms).
	RTO time.Duration
	// Timeout bounds each all-reduce call (default 30 s).
	Timeout time.Duration
	// Heartbeat, when positive, starts a background liveness beacon so
	// an aggregator-side failure detector does not mistake a worker
	// idle between tensors for a dead one. Set it well below the
	// aggregator's LivenessParams.SilenceAfter.
	Heartbeat time.Duration
	// Inject, when non-nil, applies seeded loss, duplication and
	// corruption to outgoing update datagrams (chaos testing).
	Inject *FaultInjection
}

// DialAggregator connects a worker to an aggregator.
func DialAggregator(addr string, params PeerParams) (*Peer, error) {
	poolSize, slotElems := params.PoolSize, params.SlotElems
	if poolSize == 0 {
		poolSize = 64
	}
	if slotElems == 0 {
		slotElems = packet.DefaultElems
	}
	var scale *quant.FixedPoint
	if params.Scale != 0 {
		var err error
		scale, err = quant.NewFixedPoint(params.Scale)
		if err != nil {
			return nil, err
		}
	}
	inner, err := transport.NewClient(transport.ClientConfig{
		Aggregator: addr,
		Worker: core.WorkerConfig{
			ID:           uint16(params.ID),
			Workers:      params.Workers,
			PoolSize:     poolSize,
			SlotElems:    slotElems,
			LossRecovery: true,
			JobID:        params.JobID,
		},
		RTO:       params.RTO,
		Timeout:   params.Timeout,
		Heartbeat: params.Heartbeat,
		Inject:    params.Inject.internal(),
	})
	if err != nil {
		return nil, err
	}
	return &Peer{inner: inner, scale: scale, n: params.Workers}, nil
}

// ServeDebug starts an HTTP introspection listener on addr serving
// /metrics, /debug/vars and /debug/pprof/ with this worker's protocol
// and datagram counters. It returns the bound address; the listener
// stops when the peer is closed. Call at most once.
func (p *Peer) ServeDebug(addr string) (string, error) {
	bound, closeFn, err := telemetry.ServeDebug(addr, p.inner.Registry())
	if err != nil {
		return "", err
	}
	p.debugClose = closeFn
	return bound, nil
}

// Close releases the socket (and the debug listener, if one was
// started).
func (p *Peer) Close() error {
	if p.debugClose != nil {
		p.debugClose()
		p.debugClose = nil
	}
	return p.inner.Close()
}

// AllReduceInt32 sums u across all workers of the job.
func (p *Peer) AllReduceInt32(u []int32) ([]int32, error) {
	return p.inner.AllReduceInt32(u)
}

// AllReduceFloat32 sums u across all workers via fixed-point
// quantization (requires PeerParams.Scale).
func (p *Peer) AllReduceFloat32(u []float32) ([]float32, error) {
	if p.scale == nil {
		return nil, errNoScale
	}
	q := make([]int32, len(u))
	if sat := p.scale.Quantize(q, u); sat > 0 {
		return nil, fmt.Errorf("switchml: %d elements saturated during quantization; lower the scale (see MaxSafeScale)", sat)
	}
	sum, err := p.inner.AllReduceInt32(q)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(u))
	p.scale.Dequantize(out, sum)
	return out, nil
}

var errNoScale = errors.New("switchml: float32 all-reduce needs PeerParams.Scale")
