package switchml

import (
	"errors"
	"fmt"
	"time"

	"switchml/internal/core"
	"switchml/internal/packet"
	"switchml/internal/quant"
	"switchml/internal/telemetry"
	"switchml/internal/transport"
)

// This file exposes the real-network deployment: a software
// "parameter aggregator" (the paper's §6 alternative deployment
// model) and worker clients, both speaking the SwitchML wire format
// over UDP.

// Aggregator is a UDP software aggregator hosting one job's pool.
type Aggregator struct {
	inner      *transport.Aggregator
	rec        *telemetry.FlightRecorder
	debugClose func() error
}

// AggregatorParams configures ListenAggregator.
type AggregatorParams struct {
	// Workers is n; every slot completes after n contributions.
	Workers int
	// PoolSize is s (default 64).
	PoolSize int
	// SlotElems is k (default 32).
	SlotElems int
	// JobID tags the pool for multi-tenancy.
	JobID uint16
	// Liveness, when non-nil, enables the failure detector: silent
	// workers are evicted and survivors are resumed from the global
	// progress frontier under a new job generation (§5.6). Idle
	// workers should send heartbeats (PeerParams.Heartbeat). It is
	// also the prerequisite for elastic membership (Absent,
	// Peer.JoinCluster, Peer.Drain).
	Liveness *LivenessParams
	// Quorum, when in [1, Workers), enables straggler mitigation: a
	// slot completes once this many distinct workers contributed;
	// stragglers' late updates are handled per LatePolicy. Zero (or
	// Workers) selects full participation.
	Quorum int
	// LatePolicy selects the fate of a straggler's update arriving
	// after its slot completed at quorum (LateDrop or LateReconcile).
	LatePolicy LatePolicy
	// Absent lists worker ids outside the initial membership: slots
	// complete without them, and they enter later through the join
	// fence (Peer.JoinCluster). Requires Liveness.
	Absent []int
	// Batch is the per-shard I/O burst ceiling: each receive goroutine
	// drains up to Batch datagrams per syscall (Linux recvmmsg, with
	// UDP GRO/GSO segment trains where the kernel supports them), runs
	// them to completion, and flushes every reply in one batched send.
	// Zero selects 32; 1 selects the legacy one-datagram-per-syscall
	// loops. SWITCHML_NO_MMSG=1 in the environment forces the portable
	// per-packet syscalls regardless.
	Batch int
	// BusyPoll makes shard receive loops spin briefly on an empty
	// socket before parking in the poller, trading CPU for latency.
	BusyPoll bool
	// Inject, when non-nil, applies seeded loss, duplication and
	// corruption to outgoing result datagrams (chaos testing).
	Inject *FaultInjection
	// Flight, when non-nil, arms a fault flight recorder: the last N
	// protocol events are retained, and every fault transition
	// (failure detection, reconfigure) dumps a self-contained JSON
	// incident file — recent events, metric snapshot and delta, and
	// the pool's per-slot state — into Flight.Dir.
	Flight *FlightParams
}

// FlightParams configures a fault flight recorder on a daemon (see
// AggregatorParams.Flight and PeerParams.Flight).
type FlightParams struct {
	// Dir receives one uniquely named incident file per dump.
	Dir string
	// Capacity is the event ring size (default 4096).
	Capacity int
	// Debounce suppresses dumps closer than this to the previous one
	// (default 1 s; fault cascades then yield one incident, not one
	// per transition).
	Debounce time.Duration
}

// config builds the recorder configuration; prefix names the emitting
// process in Dir-mode filenames so an aggregator and its workers can
// share one incident directory without overwriting each other.
func (f *FlightParams) config(reg *telemetry.Registry, prefix string) telemetry.FlightConfig {
	debounce := f.Debounce
	if debounce == 0 {
		debounce = time.Second
	}
	return telemetry.FlightConfig{
		Dir:        f.Dir,
		FilePrefix: prefix,
		Capacity:   f.Capacity,
		Debounce:   debounce,
		Registry:   reg,
	}
}

func (p *AggregatorParams) fill() {
	if p.PoolSize == 0 {
		p.PoolSize = 64
	}
	if p.SlotElems == 0 {
		p.SlotElems = packet.DefaultElems
	}
}

// ListenAggregator binds addr (e.g. ":5555" or "127.0.0.1:0") and
// serves aggregation until Close.
func ListenAggregator(addr string, params AggregatorParams) (*Aggregator, error) {
	params.fill()
	cfg := transport.AggregatorConfig{
		Addr: addr,
		Switch: core.SwitchConfig{
			Workers:      params.Workers,
			PoolSize:     params.PoolSize,
			SlotElems:    params.SlotElems,
			LossRecovery: true,
			JobID:        params.JobID,
			Quorum:       params.Quorum,
			LatePolicy:   params.LatePolicy.internal(),
		},
		Batch:    params.Batch,
		BusyPoll: params.BusyPoll,
		Liveness: params.Liveness.transport(),
		Absent:   append([]int(nil), params.Absent...),
		Inject:   params.Inject.internal(),
	}
	var rec *telemetry.FlightRecorder
	if params.Flight != nil {
		cfg.Metrics = telemetry.NewRegistry()
		rec = telemetry.NewFlightRecorder(params.Flight.config(cfg.Metrics, "agg-incident-"))
		cfg.Tracer = rec
	}
	inner, err := transport.NewAggregator(cfg)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		inner := inner
		rec.SetState(func() any { return inner.DebugState(true) })
	}
	return &Aggregator{inner: inner, rec: rec}, nil
}

// Addr returns the bound address, "host:port".
func (a *Aggregator) Addr() string { return a.inner.Addr().String() }

// ServeDebug starts an HTTP introspection listener on addr (e.g.
// "localhost:6060" or ":0") serving /metrics (Prometheus text),
// /debug/vars (expvar), /debug/pprof/, /debug/state (the aggregator's
// deep introspection document: per-shard loads, per-slot pool state,
// worker liveness), /debug/series (sampled time series; a one-second
// sampler starts with the listener) and — when AggregatorParams.Flight
// is set — /debug/flightrecorder. It returns the bound address; the
// listener stops when the aggregator is closed. Call at most once.
func (a *Aggregator) ServeDebug(addr string) (string, error) {
	reg := a.inner.Registry()
	smp := telemetry.NewSampler(reg, telemetry.SamplerConfig{})
	inner := a.inner
	smp.AddProbe("agg_pool_occupancy", func() float64 {
		return inner.DebugState(false).Pool.Occupancy
	})
	stop := smp.Start(time.Second)
	bound, closeFn, err := telemetry.ServeDebugOpts(addr, telemetry.DebugOptions{
		Registry: reg,
		Sampler:  smp,
		Recorder: a.rec,
		State:    func() any { return inner.DebugState(false) },
	})
	if err != nil {
		stop()
		return "", err
	}
	a.debugClose = func() error {
		stop()
		return closeFn()
	}
	return bound, nil
}

// Close stops serving (and the debug listener, if one was started).
func (a *Aggregator) Close() error {
	if a.debugClose != nil {
		a.debugClose()
		a.debugClose = nil
	}
	return a.inner.Close()
}

// Stats returns the aggregation pool's protocol counters.
func (a *Aggregator) Stats() AggregatorStats {
	st := a.inner.Stats()
	return AggregatorStats{
		Updates:               st.Updates,
		Completions:           st.Completions,
		IgnoredDuplicates:     st.IgnoredDuplicates,
		ResultRetransmissions: st.ResultRetransmissions,
		StaleUpdates:          st.StaleUpdates,
		Rejected:              st.Rejected,
		QuorumCompletions:     st.QuorumCompletions,
		LateDropped:           st.LateDropped,
		LateReconciled:        st.LateReconciled,
		GoneReplies:           st.GoneReplies,
	}
}

// Reset clears the pool and forgets worker addresses, preparing the
// aggregator for a restarted job.
func (a *Aggregator) Reset() { a.inner.Reset() }

// Alive reports whether worker w is still part of the job; without
// AggregatorParams.Liveness every configured worker counts as alive.
func (a *Aggregator) Alive(w int) bool { return a.inner.Alive(w) }

// Epoch returns the current job generation; it starts at JobID and is
// bumped by every recovery.
func (a *Aggregator) Epoch() uint16 { return a.inner.Epoch() }

// Departed reports whether worker w left the job gracefully (a drain,
// not an eviction); monitoring can tell a clean exit from a crash.
func (a *Aggregator) Departed(w int) bool { return a.inner.Departed(w) }

// Draining reports whether worker w has announced a graceful leave
// and is finishing its in-flight window.
func (a *Aggregator) Draining(w int) bool { return a.inner.Draining(w) }

// SetDown "kills" (or revives) the aggregation program while the
// socket stays bound: every inbound datagram is silently discarded,
// exactly what workers observe when a switch's aggregation program
// dies under a live crossbar. Chaos tests and failover drills drive
// it; revival needs no reset — the workers' probe fence wipes the
// pool under a fresh generation before anyone fails back.
func (a *Aggregator) SetDown(down bool) { a.inner.SetDown(down) }

// AggregatorStats are the switch-side protocol counters.
type AggregatorStats struct {
	// Updates is the number of update packets processed.
	Updates uint64
	// Completions is the number of finished slot aggregations.
	Completions uint64
	// IgnoredDuplicates counts retransmitted updates for slots still
	// aggregating.
	IgnoredDuplicates uint64
	// ResultRetransmissions counts unicast result replies served from
	// the shadow copy.
	ResultRetransmissions uint64
	// StaleUpdates counts old-phase packets dropped by the
	// monotonic-offset hardening.
	StaleUpdates uint64
	// Rejected counts malformed packets.
	Rejected uint64
	// QuorumCompletions counts slots completed at the quorum
	// threshold before the full membership contributed.
	QuorumCompletions uint64
	// LateDropped and LateReconciled count straggler updates arriving
	// after a quorum completion, per the configured LatePolicy.
	LateDropped    uint64
	LateReconciled uint64
	// GoneReplies counts "gone" replies to stragglers whose phase was
	// already evicted; those workers self-complete from their local
	// update.
	GoneReplies uint64
}

// Peer is a worker endpoint attached to a remote Aggregator.
type Peer struct {
	inner      *transport.Client
	scale      *quant.FixedPoint
	n          int
	rec        *telemetry.FlightRecorder
	debugClose func() error
}

// PeerParams configures DialAggregator. Workers, PoolSize, SlotElems
// and JobID must match the aggregator's parameters.
type PeerParams struct {
	// ID is this worker's rank in [0, Workers).
	ID int
	// Workers is n.
	Workers int
	// PoolSize is s (default 64).
	PoolSize int
	// SlotElems is k (default 32).
	SlotElems int
	// JobID tags packets for multi-tenancy.
	JobID uint16
	// Scale is the fixed-point factor for float32 all-reduce; zero
	// disables the float32 methods.
	Scale float64
	// RTO is the retransmission timeout (default 50 ms).
	RTO time.Duration
	// Timeout bounds each all-reduce call (default 30 s).
	Timeout time.Duration
	// Heartbeat, when positive, starts a background liveness beacon so
	// an aggregator-side failure detector does not mistake a worker
	// idle between tensors for a dead one. Set it well below the
	// aggregator's LivenessParams.SilenceAfter.
	Heartbeat time.Duration
	// Inject, when non-nil, applies seeded loss, duplication and
	// corruption to outgoing update datagrams (chaos testing).
	Inject *FaultInjection
	// Batch is the I/O burst ceiling: update sends accumulate into a
	// window block flushed as one batched write, and each receive
	// wakeup drains up to Batch result datagrams in one syscall. Zero
	// selects 32; 1 selects the legacy one-datagram-per-syscall path.
	// Must not be confused with protocol windowing — the slot pool is
	// unchanged; only the syscall boundary moves.
	Batch int
	// BusyPoll makes the receive path spin briefly on an empty socket
	// before parking in the poller, trading CPU for latency.
	BusyPoll bool
	// AdaptiveRTO replaces the fixed RTO with a Jacobson/Karn
	// estimator (SRTT + 4·RTTVAR, clamped to [RTO, 64×RTO], samples
	// only from never-retransmitted packets), so the retransmission
	// timer tracks the deployment's real latency instead of a guess.
	AdaptiveRTO bool
	// Standbys ranks warm-standby aggregator addresses behind the
	// primary: when the silence detector trips, the worker walks this
	// ladder in order — re-homing the job onto the first rung that
	// answers the adoption roll call (pool wiped under a bumped
	// generation, resumed at the collective chunk frontier) — and only
	// drops to the Fallback mesh when every rung is silent. While homed
	// on a standby, per-tensor probes of the primary run the Fallback
	// probation window, so the job climbs back to rank 0 once the
	// primary recovers. Every worker of a job must rank the same
	// standbys in the same order. Requires Fallback (the silence
	// detector and probation knobs live there).
	Standbys []string
	// Fallback, when non-nil, arms the degradation controller: if the
	// aggregator goes silent mid-tensor the worker finishes the tensor
	// by ring all-reduce over a peer-to-peer UDP mesh, keeps the job
	// on the mesh while probing the aggregator, and fails back after
	// Probation consecutive answered probes. All workers of a job must
	// either arm it or not.
	Fallback *FallbackParams
	// Flight, when non-nil, arms a fault flight recorder on this
	// worker: fault transitions (degrade, failback, resume) dump
	// incident files into Flight.Dir.
	Flight *FlightParams
}

// FallbackParams configures the worker-side host-all-reduce fallback
// (see PeerParams.Fallback). The mesh listens on an ephemeral UDP
// port (Peer.MeshAddr); exchange the addresses out of band and
// install them with Peer.SetMeshPeers before the first all-reduce, or
// list them here.
type FallbackParams struct {
	// Listen is the mesh socket's listen address (e.g. ":7001");
	// empty binds a wildcard ephemeral port. Multi-machine deployments
	// should fix it so Peers can be listed up front.
	Listen string
	// Peers lists every worker's mesh address, indexed by rank (this
	// worker's own entry is ignored). Leave nil to install later with
	// SetMeshPeers.
	Peers []string
	// SuspectAfter is how long the aggregator may stay silent — with a
	// tensor in flight — before the worker degrades; zero selects
	// 8×RTO. It must comfortably exceed the workers' mutual skew: the
	// degrade is collective (the probe fence wipes the pool), so one
	// jumpy worker degrades the job.
	SuspectAfter time.Duration
	// Probation is the number of consecutive answered probes required
	// before failing back; zero selects 3, negative pins the job on
	// the mesh forever.
	Probation int
	// SegElems is the mesh ring's segment size in elements; zero
	// selects 256.
	SegElems int
	// Window is the mesh ring's go-back-N send window in segments;
	// zero selects 32.
	Window int
}

func (f *FallbackParams) transport() *transport.FallbackConfig {
	if f == nil {
		return nil
	}
	return &transport.FallbackConfig{
		Listen:       f.Listen,
		Peers:        append([]string(nil), f.Peers...),
		SuspectAfter: f.SuspectAfter,
		Probation:    f.Probation,
		SegElems:     f.SegElems,
		Window:       f.Window,
	}
}

// FailoverStats counts the warm-standby ladder's activity (see
// PeerParams.Standbys). All zero when no standbys are configured.
type FailoverStats struct {
	// Rehomes counts re-homings of the job between ladder rungs,
	// descents and fail-up climbs alike.
	Rehomes uint64
	// AdoptRequests counts adoption roll-call solicitations sent.
	AdoptRequests uint64
	// Probes and ProbeAcks count fail-up probes of the primary sent
	// and answered while the job lives on a standby.
	Probes, ProbeAcks uint64
	// Failbacks counts successful climbs back to the primary (rank 0).
	Failbacks uint64
}

// FallbackStats counts the degradation controller's activity.
type FallbackStats struct {
	// Degrades counts SWITCH → DEGRADED transitions.
	Degrades uint64
	// Probes and ProbeAcks count health probes sent and answered.
	Probes, ProbeAcks uint64
	// Failbacks counts DEGRADED → SWITCH transitions.
	Failbacks uint64
	// HostRounds and HostElems count tensors (and elements) aggregated
	// by the mesh ring instead of the switch.
	HostRounds, HostElems uint64
	// MeshRetransmits counts go-back-N replays on the mesh.
	MeshRetransmits uint64
}

// DialAggregator connects a worker to an aggregator.
func DialAggregator(addr string, params PeerParams) (*Peer, error) {
	poolSize, slotElems := params.PoolSize, params.SlotElems
	if poolSize == 0 {
		poolSize = 64
	}
	if slotElems == 0 {
		slotElems = packet.DefaultElems
	}
	var scale *quant.FixedPoint
	if params.Scale != 0 {
		var err error
		scale, err = quant.NewFixedPoint(params.Scale)
		if err != nil {
			return nil, err
		}
	}
	cfg := transport.ClientConfig{
		Aggregator: addr,
		Worker: core.WorkerConfig{
			ID:           uint16(params.ID),
			Workers:      params.Workers,
			PoolSize:     poolSize,
			SlotElems:    slotElems,
			LossRecovery: true,
			JobID:        params.JobID,
		},
		RTO:         params.RTO,
		Timeout:     params.Timeout,
		Heartbeat:   params.Heartbeat,
		Batch:       params.Batch,
		BusyPoll:    params.BusyPoll,
		Inject:      params.Inject.internal(),
		AdaptiveRTO: params.AdaptiveRTO,
		Standbys:    append([]string(nil), params.Standbys...),
		Fallback:    params.Fallback.transport(),
	}
	var rec *telemetry.FlightRecorder
	if params.Flight != nil {
		cfg.Metrics = telemetry.NewRegistry()
		rec = telemetry.NewFlightRecorder(params.Flight.config(cfg.Metrics,
			fmt.Sprintf("worker%d-incident-", params.ID)))
		cfg.Tracer = rec
	}
	inner, err := transport.NewClient(cfg)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		inner := inner
		rec.SetState(func() any { return inner.DebugState() })
	}
	return &Peer{inner: inner, scale: scale, n: params.Workers, rec: rec}, nil
}

// ServeDebug starts an HTTP introspection listener on addr serving
// /metrics (Prometheus text), /debug/vars, /debug/pprof/,
// /debug/state (this worker's introspection document: health state,
// RTT estimator, progress frontier, fallback counters),
// /debug/series (sampled time series) and — when PeerParams.Flight is
// set — /debug/flightrecorder. It returns the bound address; the
// listener stops when the peer is closed. Call at most once.
func (p *Peer) ServeDebug(addr string) (string, error) {
	reg := p.inner.Registry()
	smp := telemetry.NewSampler(reg, telemetry.SamplerConfig{})
	stop := smp.Start(time.Second)
	inner := p.inner
	bound, closeFn, err := telemetry.ServeDebugOpts(addr, telemetry.DebugOptions{
		Registry: reg,
		Sampler:  smp,
		Recorder: p.rec,
		State:    func() any { return inner.DebugState() },
	})
	if err != nil {
		stop()
		return "", err
	}
	p.debugClose = func() error {
		stop()
		return closeFn()
	}
	return bound, nil
}

// Close releases the socket (and the debug listener, if one was
// started).
func (p *Peer) Close() error {
	if p.debugClose != nil {
		p.debugClose()
		p.debugClose = nil
	}
	return p.inner.Close()
}

// MeshAddr returns the fallback mesh's bound "host:port", or "" when
// PeerParams.Fallback was not set. The port is ephemeral; publish it
// to the other workers (SetMeshPeers) before the first all-reduce.
func (p *Peer) MeshAddr() string {
	a := p.inner.MeshAddr()
	if a == nil {
		return ""
	}
	return a.String()
}

// SetMeshPeers installs the job's mesh addresses, indexed by rank
// (this worker's own entry is ignored). It replaces any list given in
// PeerParams.Fallback.Peers and must complete on every worker before
// a degrade can be ridden out.
func (p *Peer) SetMeshPeers(addrs []string) error {
	return p.inner.SetMeshPeers(addrs)
}

// Degraded reports whether the job currently runs on the host mesh
// instead of the switch path.
func (p *Peer) Degraded() bool { return p.inner.Degraded() }

// ErrDrained is returned by all-reduce calls on a peer that has
// gracefully left the job (Drain). Test with errors.Is.
var ErrDrained = transport.ErrDrained

// Drain announces a graceful leave: the aggregator marks this worker
// draining (its coming silence is excused from failure detection),
// waits for the rest of the membership to pass this worker's stream
// frontier, and retires it as departed — not dead. After Drain
// returns, all-reduce calls fail with ErrDrained. The drain needs an
// aggregator-side failure detector (AggregatorParams.Liveness) and at
// least one other live worker; it commits only while the survivors
// keep training (their updates are the evidence the drain boundary
// was passed).
func (p *Peer) Drain() error { return p.inner.Drain() }

// JoinCluster admits this worker into a running job through the
// membership fence: the incumbents hold at their common tensor
// boundary, the pool is wiped under a bumped generation with this
// worker in the membership, and everyone resumes at the global
// frontier. The returned snapshot is the model state fetched from a
// holding incumbent over the fallback mesh (nil unless both sides
// armed Fallback and an incumbent installed SetStateProvider). The
// job must be actively training: only workers inside an all-reduce
// drive the fence.
func (p *Peer) JoinCluster() ([]int32, error) { return p.inner.JoinCluster() }

// SetStateProvider installs the snapshot callback served to joiners:
// while this worker holds at a join fence it answers state-fetch
// requests over the mesh with the returned vector (taken once per
// fence, at the hold boundary — so the snapshot is step-aligned).
func (p *Peer) SetStateProvider(f func() []int32) { p.inner.SetStateProvider(f) }

// Frontier returns the global stream offset this worker has
// completed through — after JoinCluster, the offset training resumes
// from.
func (p *Peer) Frontier() uint64 { return p.inner.Frontier() }

// Drained reports whether this peer has gracefully left the job.
func (p *Peer) Drained() bool { return p.inner.Drained() }

// HomeRank reports the failover-ladder rung currently serving this
// worker's job: 0 is the primary aggregator, higher ranks index
// PeerParams.Standbys (1-based). Safe for monitoring goroutines.
func (p *Peer) HomeRank() int { return p.inner.HomeRank() }

// FailoverStats snapshots the warm-standby ladder counters; safe to
// call concurrently with a running all-reduce.
func (p *Peer) FailoverStats() FailoverStats {
	st := p.inner.FailoverStats()
	return FailoverStats{
		Rehomes:       st.Rehomes,
		AdoptRequests: st.AdoptRequests,
		Probes:        st.Probes,
		ProbeAcks:     st.ProbeAcks,
		Failbacks:     st.Failbacks,
	}
}

// FallbackStats snapshots the degradation controller's counters; it
// is safe to call concurrently with a running all-reduce.
func (p *Peer) FallbackStats() FallbackStats {
	st := p.inner.FallbackStats()
	return FallbackStats{
		Degrades:        st.Degrades,
		Probes:          st.Probes,
		ProbeAcks:       st.ProbeAcks,
		Failbacks:       st.Failbacks,
		HostRounds:      st.HostRounds,
		HostElems:       st.HostElems,
		MeshRetransmits: st.MeshRetransmits,
	}
}

// AllReduceInt32 sums u across all workers of the job. If the
// aggregator dies mid-tensor and no fallback is armed, the error
// matches ErrSwitchUnavailable (retryable — the input was fine).
func (p *Peer) AllReduceInt32(u []int32) ([]int32, error) {
	out, err := p.inner.AllReduceInt32(u)
	return out, fabricErr(err)
}

// AllReduceFloat32 sums u across all workers via fixed-point
// quantization (requires PeerParams.Scale).
func (p *Peer) AllReduceFloat32(u []float32) ([]float32, error) {
	if p.scale == nil {
		return nil, errNoScale
	}
	q := make([]int32, len(u))
	if sat := p.scale.Quantize(q, u); sat > 0 {
		return nil, fmt.Errorf("switchml: %d elements saturated during quantization; lower the scale (see MaxSafeScale)", sat)
	}
	sum, err := p.inner.AllReduceInt32(q)
	if err != nil {
		return nil, fabricErr(err)
	}
	out := make([]float32, len(u))
	p.scale.Dequantize(out, sum)
	return out, nil
}

var errNoScale = errors.New("switchml: float32 all-reduce needs PeerParams.Scale")
