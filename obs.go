package switchml

import "switchml/internal/telemetry"

// SeriesPoint is one sample of a recorded time series.
type SeriesPoint struct {
	// TS is the sample timestamp in nanoseconds: virtual time for
	// simulated runs, UnixNano for live daemons.
	TS int64 `json:"ts"`
	// V is the sampled value.
	V float64 `json:"v"`
}

// Series is one recorded time series.
type Series struct {
	// Kind classifies the series: "rate" (counter delta per second),
	// "gauge" (raw value), "quantile" (histogram interval quantile) or
	// "probe" (a sampled callback such as pool occupancy).
	Kind string `json:"kind"`
	// Points are the retained samples, oldest first.
	Points []SeriesPoint `json:"points"`
}

// seriesFrom converts the internal sampler dump into the public form.
func seriesFrom(m map[string]telemetry.SeriesData) map[string]Series {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]Series, len(m))
	for k, sd := range m {
		pts := make([]SeriesPoint, len(sd.Points))
		for i, p := range sd.Points {
			pts[i] = SeriesPoint{TS: p.TS, V: p.V}
		}
		out[k] = Series{Kind: sd.Kind, Points: pts}
	}
	return out
}
