package switchml

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"switchml/internal/telemetry"
)

// TestSimSeries checks that SampleEvery turns a simulated run into
// time series: points exist, timestamps strictly increase, and the
// catalog includes counter rates and the pool-occupancy probe.
func TestSimSeries(t *testing.T) {
	tensor := make([]int32, 1<<14)
	for i := range tensor {
		tensor[i] = int32(i % 97)
	}
	res, err := SimulateRack(SimParams{
		Workers:     4,
		PoolSize:    16,
		SampleEvery: 20 * time.Microsecond,
		Seed:        3,
	}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series sampled")
	}
	for name, s := range res.Series {
		if len(s.Points) == 0 {
			t.Errorf("series %s empty", name)
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].TS <= s.Points[i-1].TS {
				t.Fatalf("series %s not strictly increasing at %d", name, i)
			}
		}
	}
	if _, ok := res.Series["rack_pool_occupancy"]; !ok {
		t.Error("missing rack_pool_occupancy probe series")
	}
	found := false
	for name, s := range res.Series {
		if s.Kind == "rate" && len(name) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no rate series in dump")
	}
}

// TestFlightIncident scripts a switch kill and checks the incident
// file the flight recorder leaves behind: schema-tagged, carrying the
// degrade transition event, the pre/post metric sections, and the
// switch's per-slot state — the artifact an operator would attach to
// a ticket.
func TestFlightIncident(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incident.json")
	tensor := make([]int32, 1<<15)
	for i := range tensor {
		tensor[i] = int32(i % 131)
	}
	_, err := SimulateRack(SimParams{
		Workers:  4,
		PoolSize: 8,
		RTO:      200 * time.Microsecond,
		Health: &HealthParams{
			SuspectAfter: 1600 * time.Microsecond,
			ProbeEvery:   400 * time.Microsecond,
		},
		Faults: &FaultScenario{Actions: []FaultAction{
			{Kind: FaultKillSwitch, Step: 1, At: 30 * time.Microsecond},
		}},
		FlightFile: path,
		Seed:       11,
	}, tensor)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no incident file: %v", err)
	}
	var inc telemetry.Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatalf("incident does not parse: %v", err)
	}
	if inc.Schema != telemetry.IncidentSchema {
		t.Errorf("schema = %q, want %q", inc.Schema, telemetry.IncidentSchema)
	}
	if inc.Reason != "Degrade" {
		t.Errorf("reason = %q, want Degrade", inc.Reason)
	}
	sawDegrade := false
	for _, e := range inc.Events {
		if e.Type == telemetry.EvDegrade.String() {
			sawDegrade = true
		}
	}
	if !sawDegrade {
		t.Error("incident events missing the degrade transition")
	}
	if inc.Trigger == nil || inc.Trigger.Type != telemetry.EvDegrade.String() {
		t.Errorf("trigger = %+v, want the degrade event", inc.Trigger)
	}
	if inc.Metrics == nil || inc.Delta == nil || inc.Pre == nil {
		t.Fatal("incident missing metric sections")
	}
	if inc.Delta.Counters["switch_updates_total{job=\"0\"}"] == 0 {
		t.Error("delta shows no switch updates before the kill")
	}
	// The embedded deep state is the switch's pool document with
	// per-slot detail.
	stateJSON, err := json.Marshal(inc.State)
	if err != nil {
		t.Fatal(err)
	}
	var pool struct {
		Workers int `json:"workers"`
		Slots   []struct {
			Ver int `json:"ver"`
			Idx int `json:"idx"`
		} `json:"slots"`
	}
	if err := json.Unmarshal(stateJSON, &pool); err != nil {
		t.Fatalf("incident state is not a pool document: %v", err)
	}
	if pool.Workers != 4 {
		t.Errorf("state workers = %d, want 4", pool.Workers)
	}
	if len(pool.Slots) == 0 {
		t.Error("state carries no per-slot detail")
	}
}
